"""Command-line interface: ``dryadsynth [options] file.sl``.

Reads a SyGuS-IF problem, runs a solver from the portfolio (the cooperative
synthesizer by default) and prints the solution as a ``define-fun``, the way
the original DryadSynth binary behaves in the SyGuS competition harness.

``dryadsynth batch DIR`` runs a whole directory of ``.sl`` files through the
process-parallel job engine (:mod:`repro.service`) and emits one JSON record
per problem — the batch/service entry point.

``dryadsynth serve`` runs the long-lived synthesis daemon
(:mod:`repro.serve`): problems over HTTP, per-client fair queues with
priorities and backpressure, cache-first admission, graceful SIGTERM drain.

``dryadsynth profile spans.jsonl`` renders a per-phase time-attribution
report (plus the hottest SMT queries) from a span dump produced with
``--spans-out`` (see :mod:`repro.obs` and docs/OBSERVABILITY.md).

``dryadsynth flame spans.jsonl`` renders the sampled wall-clock stack
profile recorded with ``--sample`` — hottest frames, FlameGraph/speedscope
``.collapsed`` export, diff-vs-baseline (:mod:`repro.obs.sampler`).

``dryadsynth postmortem journal.flight.jsonl`` reconstructs what a killed
worker was doing from its flight-recorder journal (``batch --flight-dir``).

``dryadsynth bench-compare`` gates a quick-bench run against the committed
``BENCH_history.jsonl`` regression history (see :mod:`repro.bench.history`).

``dryadsynth explain`` renders the search forensics of a run — the
subproblem tree with per-node wall/SMT attribution, the deduction
rule-firing table, and (for unsolved runs) the failure frontier — from a
``--spans-out`` dump or by running a problem directly (:mod:`repro.obs.explain`).

``dryadsynth smt-replay`` re-executes a captured SMT query corpus
(``--smt-corpus``) on a fresh solver and reports status/model divergences
and timing percentiles (:mod:`repro.smt.capture`).

``dryadsynth smt-bench`` replays the committed corpus *as a benchmark*:
solver-only (no synthesis loop in the measurement), query-memo enabled,
and the total replay wall gated against the ``smt-bench`` records in
``BENCH_history.jsonl`` (see docs/SMT.md).

``dryadsynth diff runA.jsonl runB.jsonl`` compares two runs' span dumps:
per-node self-wall deltas aligned by stable node id, solved-set changes,
strategy drift and the rule-firing delta table (:mod:`repro.obs.diff`).

``dryadsynth history`` queries the committed per-node analytics store
(``BENCH_analytics.jsonl``): how a subproblem node behaved across runs —
strategies, rule firings, heights, outcomes (:mod:`repro.bench.analytics`).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time
from typing import Optional

from repro.bench.runner import SOLVER_NAMES, make_solver
from repro.sygus.parser import parse_sygus_file


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dryadsynth",
        description=(
            "Cooperative SyGuS solver for the CLIA theory "
            "(reproduction of Huang et al., PLDI 2020)"
        ),
    )
    parser.add_argument("file", help="SyGuS-IF (.sl) problem file")
    parser.add_argument(
        "--solver",
        choices=SOLVER_NAMES,
        default="dryadsynth",
        help="which solver of the portfolio to run",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget (default: unlimited)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print solving statistics to stderr",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the cooperative loop's event trace to stderr "
        "(dryadsynth solvers only)",
    )
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="write the event trace as JSON to PATH "
        "(dryadsynth solvers only)",
    )
    parser.add_argument(
        "--smt-corpus",
        metavar="DIR",
        default=None,
        help="capture every SMT query issued during the run into a replayable "
        "corpus in DIR (replay with `dryadsynth smt-replay DIR`)",
    )
    _add_telemetry_out_args(parser)
    return parser


def _add_telemetry_out_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spans-out",
        metavar="PATH",
        default=None,
        help="record telemetry spans and write them as JSONL to PATH "
        "(render with `dryadsynth profile PATH`)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="record metrics and write a Prometheus text dump to PATH",
    )
    parser.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="emit structured JSON log lines (repro-log/1) to PATH, "
        "or to stderr with '-'",
    )
    parser.add_argument(
        "--trace-chrome",
        metavar="PATH",
        default=None,
        help="export the recorded span stream as a Chrome/Perfetto "
        "trace_event file (open in chrome://tracing or ui.perfetto.dev)",
    )


@contextlib.contextmanager
def _json_logging(args):
    """Attach the ``--log-json`` handler for the duration of a command."""
    target = getattr(args, "log_json", None)
    if not target:
        yield None
        return
    from repro.obs.log import configure_json_logging, remove_json_logging

    try:
        handler = configure_json_logging(target)
    except OSError as exc:
        print(f"warning: cannot open log target: {exc}", file=sys.stderr)
        yield None
        return
    try:
        yield handler
    finally:
        remove_json_logging(handler)


def _write_telemetry(recorder, args) -> None:
    """Flush a finished recorder to the requested ``--*-out`` files."""
    from repro.obs.export import write_metrics_text, write_spans_jsonl

    if args.spans_out:
        try:
            write_spans_jsonl(recorder, args.spans_out)
        except OSError as exc:
            print(f"warning: cannot write spans: {exc}", file=sys.stderr)
    if args.metrics_out:
        try:
            write_metrics_text(recorder.metrics, args.metrics_out)
        except OSError as exc:
            print(f"warning: cannot write metrics: {exc}", file=sys.stderr)
    if getattr(args, "trace_chrome", None):
        from repro.obs.chrome import write_recorder_trace

        try:
            write_recorder_trace(recorder, args.trace_chrome)
        except OSError as exc:
            print(f"warning: cannot write trace: {exc}", file=sys.stderr)
    if recorder.truncated:
        print(
            "warning: span stream truncated by the recorder cap; "
            "telemetry outputs are partial",
            file=sys.stderr,
        )


def _wants_recording(args) -> bool:
    return bool(
        args.spans_out
        or args.metrics_out
        or getattr(args, "trace_chrome", None)
    )


@contextlib.contextmanager
def _smt_capturing(args, problem_name: str):
    """Attach the ``--smt-corpus`` query capture for the run's duration."""
    directory = getattr(args, "smt_corpus", None)
    if not directory:
        yield None
        return
    from repro.smt.capture import capturing

    with capturing(directory, problem_name) as capture:
        yield capture


def main(argv: Optional[list] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "batch":
        return _batch_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "top":
        from repro.serve.top import main as top_main

        return top_main(argv[1:])
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    if argv and argv[0] == "flame":
        return _flame_main(argv[1:])
    if argv and argv[0] == "postmortem":
        return _postmortem_main(argv[1:])
    if argv and argv[0] == "bench-compare":
        return _bench_compare_main(argv[1:])
    if argv and argv[0] == "explain":
        return _explain_main(argv[1:])
    if argv and argv[0] == "diff":
        return _diff_main(argv[1:])
    if argv and argv[0] == "history":
        return _history_main(argv[1:])
    if argv and argv[0] == "smt-replay":
        return _smt_replay_main(argv[1:])
    if argv and argv[0] == "smt-bench":
        return _smt_bench_main(argv[1:])
    args = build_arg_parser().parse_args(argv)
    with _json_logging(args):
        return _single_main(args)


def _single_main(args) -> int:
    try:
        problem = parse_sygus_file(args.file)
    except (OSError, Exception) as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.sygus.multi import MultiSygusProblem

    if isinstance(problem, MultiSygusProblem):
        return _run_multi(problem, args)
    solver = make_solver(args.solver, args.timeout)
    trace = None
    if (args.trace or args.trace_json) and hasattr(solver, "trace"):
        from repro.synth.trace import SynthesisTrace

        trace = SynthesisTrace()
        solver.trace = trace
    import os

    problem_name = os.path.splitext(os.path.basename(args.file))[0]
    start = time.monotonic()
    with _smt_capturing(args, problem_name):
        if _wants_recording(args):
            from repro import obs

            with obs.recording() as recorder:
                outcome = solver.synthesize(problem)
            _write_telemetry(recorder, args)
        else:
            outcome = solver.synthesize(problem)
    elapsed = time.monotonic() - start
    if trace is not None and args.trace:
        print(trace.render(), file=sys.stderr)
    if trace is not None and args.trace_json:
        try:
            with open(args.trace_json, "w") as handle:
                json.dump(trace.to_json(), handle, indent=1)
        except OSError as exc:
            print(f"warning: cannot write trace: {exc}", file=sys.stderr)
    if args.stats:
        print(
            f"; solver={args.solver} time={elapsed:.3f}s "
            f"timed_out={outcome.timed_out} stats={outcome.stats}",
            file=sys.stderr,
        )
    if outcome.solution is None:
        print("fail" if not outcome.timed_out else "timeout")
        return 1
    print(outcome.solution.define_fun())
    return 0


def _run_multi(problem, args) -> int:
    """Solve a multi-function problem (always via the multi synthesizer)."""
    from repro.synth.config import SynthConfig
    from repro.synth.multi import MultiFunctionSynthesizer

    synthesizer = MultiFunctionSynthesizer(SynthConfig(timeout=args.timeout))
    if _wants_recording(args):
        from repro import obs

        with obs.recording() as recorder:
            solution, stats = synthesizer.synthesize(problem)
        _write_telemetry(recorder, args)
    else:
        solution, stats = synthesizer.synthesize(problem)
    if args.stats:
        print(f"; stats={stats}", file=sys.stderr)
    if solution is None:
        print("fail")
        return 1
    for rendered in solution.define_funs():
        print(rendered)
    return 0


def build_batch_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dryadsynth batch",
        description=(
            "Run a directory (or list) of SyGuS-IF problems through the "
            "process-parallel synthesis job engine; one JSON record per "
            "problem is written as JSONL."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help=".sl files and/or directories containing them",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="number of worker processes (default: 1)",
    )
    parser.add_argument(
        "--solver",
        default="dryadsynth",
        help="solver to run on every problem (default: dryadsynth); any "
        f"of {', '.join(SOLVER_NAMES)} or fixed-height@H",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-problem wall-clock budget (default: 10)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write JSONL results to PATH (default: stdout)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="persistent fingerprint-keyed result cache directory "
        "(default: $REPRO_SERVICE_CACHE or ~/.cache/repro/results)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache for this run",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="retries per crashed/hung job before giving up (default: 1)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record spans/metrics inside every worker and merge them into "
        "a fleet-wide view (implied by --spans-out/--metrics-out/"
        "--serve-telemetry)",
    )
    parser.add_argument(
        "--serve-telemetry",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /healthz and /jobs over HTTP on "
        "127.0.0.1:PORT while the batch runs (0 picks a free port; "
        "implies --telemetry)",
    )
    parser.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="give every attempt a crash-resistant flight-recorder journal "
        "in DIR; journals of killed/crashed workers are kept and recovered "
        "into the result's postmortem (render with `dryadsynth postmortem`)",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help="soft per-worker RSS budget: a worker over it is terminated "
        "and its job completes as oom_budget (with a postmortem when "
        "--flight-dir is set), never a pool crash",
    )
    parser.add_argument(
        "--sample",
        action="store_true",
        help="run a wall-clock stack sampler inside every worker and merge "
        "the profiles fleet-wide (render with `dryadsynth flame`; implies "
        "--telemetry)",
    )
    parser.add_argument(
        "--collapsed-out",
        metavar="PATH",
        default=None,
        help="write the merged sampled profile as FlameGraph/speedscope "
        "collapsed-stack text to PATH (implies --sample)",
    )
    _add_telemetry_out_args(parser)
    return parser


def _collect_sl_files(paths) -> list:
    import glob
    import os

    files = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(sorted(glob.glob(os.path.join(path, "*.sl"))))
        else:
            files.append(path)
    return files


def _batch_main(argv) -> int:
    from repro.service.cache import ResultCache
    from repro.service.jobs import CRASHED, SynthesisJob
    from repro.service.pool import WorkerPool

    args = build_batch_arg_parser().parse_args(argv)
    files = _collect_sl_files(args.paths)
    if not files:
        print("error: no .sl files found", file=sys.stderr)
        return 2
    serve = args.serve_telemetry is not None
    sample = bool(args.sample or args.collapsed_out)
    telemetry = bool(
        args.telemetry or args.spans_out or args.metrics_out or serve
        or sample
    )
    # Workers under the spawn start method re-attach logging from the job's
    # params; `-` is parent-only (worker stderr is not the terminal).
    params = {"log_json": args.log_json} if args.log_json else {}
    jobs = []
    for path in files:
        try:
            job = SynthesisJob.from_file(
                path,
                solver=args.solver,
                timeout=args.timeout,
                telemetry=telemetry,
                params=dict(params),
            )
            job.sample = sample
            jobs.append(job)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    cache = None if args.no_cache else ResultCache(args.cache)
    start = time.monotonic()

    def progress(result) -> None:
        print(
            f"; [{result.status:>9s}] {result.name}"
            f" ({result.wall_time:.2f}s"
            f"{', cached' if result.from_cache else ''})",
            file=sys.stderr,
        )

    pool = WorkerPool(
        workers=args.jobs,
        max_retries=args.retries,
        cache=cache,
        flight_dir=args.flight_dir,
        max_rss_mb=args.max_rss_mb,
    )
    with _json_logging(args):
        if telemetry:
            from repro import obs

            # The parent-side recorder is the merge target for every
            # worker's shipped span tree and metric snapshot (see
            # WorkerPool.complete) — and what /metrics scrapes serve.
            with obs.recording() as recorder:
                server = _start_telemetry_server(args, pool, recorder)
                try:
                    with pool:
                        results = pool.run(jobs, progress=progress)
                finally:
                    if server is not None:
                        server.stop()
            _write_telemetry(recorder, args)
            if args.collapsed_out:
                from repro.obs.sampler import write_collapsed

                profile = getattr(recorder, "profile", None)
                if profile is not None and profile.samples:
                    try:
                        write_collapsed(profile, args.collapsed_out)
                        print(
                            f"; wrote {profile.samples} samples over "
                            f"{len(profile.pids)} process(es) to "
                            f"{args.collapsed_out}",
                            file=sys.stderr,
                        )
                    except OSError as exc:
                        print(f"warning: cannot write collapsed profile: "
                              f"{exc}", file=sys.stderr)
                else:
                    print(
                        "warning: no stack samples collected; "
                        "collapsed profile not written",
                        file=sys.stderr,
                    )
        else:
            with pool:
                results = pool.run(jobs, progress=progress)
    elapsed = time.monotonic() - start
    out = open(args.out, "w") if args.out else sys.stdout
    try:
        for result in results:
            record = result.to_json()
            # Worker telemetry is already merged into the fleet view; keep
            # the per-problem JSONL records lean.
            record.pop("telemetry", None)
            out.write(json.dumps(record, sort_keys=True) + "\n")
    finally:
        if args.out:
            out.close()
    solved = sum(1 for r in results if r.status == "solved")
    crashed = sum(1 for r in results if r.status == CRASHED)
    cache_note = (
        f" cache hits={cache.hits} misses={cache.misses} "
        f"evictions={cache.evictions}"
        if cache is not None
        else ""
    )
    print(
        f"; batch done: {solved}/{len(results)} solved in {elapsed:.2f}s "
        f"with --jobs {args.jobs}{cache_note}",
        file=sys.stderr,
    )
    return 1 if crashed else 0


def _start_telemetry_server(args, pool, recorder):
    """Start the live HTTP endpoint for ``--serve-telemetry`` (best-effort)."""
    if args.serve_telemetry is None:
        return None
    from repro.obs.live import TelemetryServer

    try:
        server = TelemetryServer(
            port=args.serve_telemetry,
            metrics_fn=lambda: recorder.metrics.to_prometheus(),
            jobs_fn=pool.jobs_snapshot,
            health_extra=lambda: {"workers_alive": len(pool.worker_pids())},
        )
        url = server.start()
    except OSError as exc:
        print(f"warning: cannot serve telemetry: {exc}", file=sys.stderr)
        return None
    # Machine-readable discovery line: with `--serve-telemetry 0` the OS
    # picks the port, and wrapper scripts need the bound URL on a stable,
    # greppable line (KEY=value, nothing else on it).
    print(f"TELEMETRY_URL={url}", file=sys.stderr, flush=True)
    print(
        f"; serving telemetry on {url} "
        "(/metrics /healthz /jobs)",
        file=sys.stderr,
    )
    return server


def build_postmortem_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dryadsynth postmortem",
        description=(
            "Reconstruct what a worker was doing from the flight-recorder "
            "journal it left behind (see `dryadsynth batch --flight-dir`)."
        ),
    )
    parser.add_argument(
        "journal",
        help="flight journal (*.flight.jsonl) of a crashed/killed attempt",
    )
    parser.add_argument(
        "--tail",
        type=int,
        default=25,
        metavar="K",
        help="spans/events from the end of the ring to show (default: 25)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw post-mortem payload as JSON instead of a report",
    )
    return parser


def _postmortem_main(argv) -> int:
    from repro.obs.flight import read_postmortem, render_postmortem

    args = build_postmortem_arg_parser().parse_args(argv)
    try:
        postmortem = read_postmortem(args.journal, tail=args.tail)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if postmortem is None:
        print(
            f"error: no recoverable flight journal at {args.journal}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(json.dumps(postmortem, indent=1, sort_keys=True))
    else:
        print(render_postmortem(postmortem))
    return 0


def build_serve_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dryadsynth serve",
        description=(
            "Run the long-lived synthesis daemon: SyGuS problems over HTTP "
            "(POST /v1/jobs), per-client fair queues with priorities and "
            "backpressure, cache-first admission, warm workers, and "
            "SIGTERM-triggered graceful drain.  The same listener serves "
            "/metrics, /jobs and /healthz."
        ),
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default: 0 = OS-assigned; the resolved URL is "
        "printed as a SERVE_URL= line)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="number of warm worker processes (default: 2)",
    )
    parser.add_argument(
        "--solver",
        default="dryadsynth",
        help="default solver when a submission names none "
        f"(default: dryadsynth); any of {', '.join(SOLVER_NAMES)}",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="default per-job budget when a submission names none "
        "(default: 10)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="bound on queued-but-not-running jobs before submissions get "
        "429/shedding (default: 4 per worker)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent result cache; resubmitted problems return "
        "instantly without consuming a worker",
    )
    parser.add_argument(
        "--results-out",
        metavar="PATH",
        default=None,
        help="append every terminal job record to PATH as JSONL "
        "(flushed per record; survives SIGTERM drain)",
    )
    parser.add_argument(
        "--flight-dir",
        metavar="DIR",
        default=None,
        help="per-job crash flight recorder journals (see "
        "`dryadsynth postmortem`)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="per-job retries after a worker crash (default: 1)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record worker-side spans/metrics and merge them into the "
        "daemon's /metrics",
    )
    parser.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="emit structured JSON log lines (repro-log/1) to PATH, "
        "or to stderr with '-'",
    )
    parser.add_argument(
        "--spans-out",
        metavar="PATH",
        default=None,
        help="on drain, dump the daemon's merged span stream (request "
        "spans + re-rooted worker trees) as JSONL for `dryadsynth "
        "explain` / `dryadsynth profile --trace-chrome`",
    )
    parser.add_argument(
        "--slo-objective",
        type=float,
        default=None,
        metavar="SECONDS",
        help="latency objective for the SLO layer (default: the per-job "
        "timeout)",
    )
    parser.add_argument(
        "--slo-target",
        type=float,
        default=0.95,
        metavar="FRACTION",
        help="fraction of requests that must meet the objective "
        "(default: 0.95)",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        metavar="MB",
        help="soft per-worker RSS budget: a worker over it is terminated "
        "and its job completes as oom_budget, never a pool crash",
    )
    return parser


def _serve_main(argv) -> int:
    import signal

    from repro import obs
    from repro.serve import ServeSettings, SynthesisDaemon, build_server
    from repro.serve.slo import SloPolicy
    from repro.service.cache import ResultCache

    args = build_serve_arg_parser().parse_args(argv)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    slo = SloPolicy(
        objective_seconds=(
            args.slo_objective if args.slo_objective is not None
            else args.timeout
        ),
        target=args.slo_target,
    )
    with _json_logging(args), obs.recording() as recorder:
        settings = ServeSettings(
            workers=args.jobs,
            solver=args.solver,
            timeout=args.timeout,
            max_queue=args.max_queue,
            cache=cache,
            results_out=args.results_out,
            flight_dir=args.flight_dir,
            retries=args.retries,
            telemetry=args.telemetry,
            slo=slo,
            max_rss_mb=args.max_rss_mb,
        )
        daemon = SynthesisDaemon(settings)
        try:
            server = build_server(daemon, port=args.port, host=args.host)
            url = server.start()
        except OSError as exc:
            print(f"error: cannot bind: {exc}", file=sys.stderr)
            daemon.stop(drain=False)
            return 2
        # Machine-readable discovery line (stdout, like TELEMETRY_URL= for
        # batch): with --port 0 this is the only way scripts learn the port.
        print(f"SERVE_URL={url}", flush=True)
        print(
            f"serving synthesis on {url} with {args.jobs} worker(s) "
            f"(solver={args.solver}, timeout={args.timeout:g}s, "
            f"max-queue={settings.max_queue}); SIGTERM drains gracefully",
            file=sys.stderr,
        )

        def _drain_signal(signum, frame):  # noqa: ARG001 - signal API
            print(
                f"received {signal.Signals(signum).name}: draining "
                "(no new admissions; finishing accepted jobs)",
                file=sys.stderr,
            )
            daemon.request_drain()

        signal.signal(signal.SIGTERM, _drain_signal)
        signal.signal(signal.SIGINT, _drain_signal)
        try:
            while not daemon.wait_stopped(timeout=0.5):
                pass
        finally:
            server.stop()
        print(
            f"drained: {daemon.completed} job(s) completed, "
            f"{daemon.shed} shed, {daemon.rejected} rejected",
            file=sys.stderr,
        )
        if args.spans_out and recorder is not None:
            from repro.obs.export import write_spans_jsonl

            write_spans_jsonl(recorder, args.spans_out)
            print(f"wrote span dump to {args.spans_out}", file=sys.stderr)
    return 0


def build_bench_compare_arg_parser() -> argparse.ArgumentParser:
    from repro.bench.history import (
        DEFAULT_MAX_LATENCY_GROWTH,
        DEFAULT_MAX_WALL_GROWTH,
        DEFAULT_WINDOW,
    )

    parser = argparse.ArgumentParser(
        prog="dryadsynth bench-compare",
        description=(
            "Gate a quick-bench run against the committed benchmark "
            "regression history: fail on a solved-set shrink or on median "
            "per-problem wall growth beyond the budget."
        ),
    )
    parser.add_argument(
        "--against",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="history JSONL store to gate against "
        "(default: BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--from-dir",
        default=None,
        metavar="DIR",
        help="reuse quick-bench artifacts (quick_bench.jsonl + "
        "quick_bench_summary.json) from DIR instead of re-running the "
        "demo subset",
    )
    parser.add_argument(
        "--from-loadgen",
        default=None,
        metavar="PATH",
        help="gate a serve-mode loadgen report (repro.serve.loadgen --out) "
        "instead of a quick-bench run; compares only against other "
        "serve-mode history records and applies the p99 latency gate",
    )
    parser.add_argument("--solver", default="dryadsynth")
    parser.add_argument(
        "--timeout",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="per-problem budget when running fresh (default: 2)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        metavar="N",
        help=f"trailing history records forming the baseline "
        f"(default: {DEFAULT_WINDOW})",
    )
    parser.add_argument(
        "--max-wall-growth",
        type=float,
        default=DEFAULT_MAX_WALL_GROWTH,
        metavar="FRACTION",
        help="allowed median per-problem wall growth "
        "(default: 0.15 = 15%%)",
    )
    parser.add_argument(
        "--max-latency-growth",
        type=float,
        default=DEFAULT_MAX_LATENCY_GROWTH,
        metavar="FRACTION",
        help="allowed p99 submit-to-result latency growth for serve-mode "
        "records (default: 0.5 = 50%%)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append this run's record to the history store when it passes",
    )
    parser.add_argument(
        "--record-out",
        default=None,
        metavar="PATH",
        help="also write this run's history record as JSON to PATH "
        "(the CI artifact)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="on gate failure, attribute the regression: name the "
        "genuinely-slower problems and — when a span dump is available — "
        "the phases and subproblem nodes where the time went",
    )
    parser.add_argument(
        "--spans",
        default=None,
        metavar="PATH",
        help="span dump of the gated run for --explain drill-down "
        "(default: <from-dir>/quick_bench.spans.jsonl when --from-dir "
        "is given)",
    )
    parser.add_argument(
        "--baseline-spans",
        default=None,
        metavar="PATH",
        help="span dump of a baseline run; with --explain, prints the "
        "full per-node run diff (`dryadsynth diff`) against it",
    )
    return parser


def _explain_comparison(args, comparison, record) -> None:
    """The ``bench-compare --explain`` drill-down, printed after the gate."""
    import os

    from repro.bench.analytics import attribute_regression

    spans = events = None
    spans_path = args.spans
    if spans_path is None and args.from_dir:
        candidate = os.path.join(args.from_dir, "quick_bench.spans.jsonl")
        if os.path.exists(candidate):
            spans_path = candidate
    if spans_path:
        from repro.obs.export import read_spans_jsonl

        try:
            spans, events, _ = read_spans_jsonl(spans_path)
        except (OSError, ValueError) as exc:
            print(f"warning: cannot read spans: {exc}", file=sys.stderr)
    print(attribute_regression(comparison, record, spans=spans, events=events))
    if args.baseline_spans and spans_path:
        from repro.obs.diff import diff_from_files, render_diff

        try:
            diff = diff_from_files(args.baseline_spans, spans_path)
        except (OSError, ValueError) as exc:
            print(f"warning: cannot diff spans: {exc}", file=sys.stderr)
            return
        print()
        print(render_diff(diff))


def _bench_compare_main(argv) -> int:
    from repro.bench import history as bench_history

    args = build_bench_compare_arg_parser().parse_args(argv)
    if args.from_loadgen:
        try:
            with open(args.from_loadgen) as handle:
                report = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read loadgen report: {exc}",
                  file=sys.stderr)
            return 2
        record = bench_history.record_from_loadgen(
            report, solver=args.solver, timeout=args.timeout
        )
    elif args.from_dir:
        try:
            result = bench_history.result_from_artifacts(args.from_dir)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read artifacts: {exc}", file=sys.stderr)
            return 2
        record = bench_history.record_from_quick_bench(result)
    else:
        from repro.bench.quick_bench import run_quick_bench

        print(
            f"; running the demo subset (solver={args.solver}, "
            f"timeout={args.timeout:g}s)",
            file=sys.stderr,
        )
        result = run_quick_bench(args.solver, args.timeout)
        record = bench_history.record_from_quick_bench(result)
    history = bench_history.load_history(args.against)
    comparison = bench_history.compare(
        record,
        history,
        window=args.window,
        max_wall_growth=args.max_wall_growth,
        max_latency_growth=args.max_latency_growth,
    )
    print(comparison.render())
    if args.explain and not comparison.ok:
        _explain_comparison(args, comparison, record)
    if args.record_out:
        try:
            with open(args.record_out, "w") as handle:
                json.dump(record, handle, indent=1, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(f"warning: cannot write record: {exc}", file=sys.stderr)
    if args.append and comparison.ok:
        try:
            bench_history.append_history(args.against, record)
            print(f"; recorded into {args.against}", file=sys.stderr)
        except OSError as exc:
            print(f"warning: cannot append history: {exc}", file=sys.stderr)
    return 0 if comparison.ok else 1


def build_profile_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dryadsynth profile",
        description=(
            "Render per-phase time attribution (self vs cumulative wall/CPU) "
            "and the hottest SMT queries from a span dump written with "
            "--spans-out."
        ),
    )
    parser.add_argument("file", help="span JSONL file (from --spans-out)")
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="number of hottest SMT queries to show (default: 10)",
    )
    parser.add_argument(
        "--trace-chrome",
        metavar="PATH",
        default=None,
        help="also convert the span dump to a Chrome/Perfetto trace file",
    )
    return parser


def _profile_main(argv) -> int:
    from repro.obs.export import read_spans_jsonl
    from repro.obs.profile import profile_text
    from repro.obs.sampler import read_profile_record

    args = build_profile_arg_parser().parse_args(argv)
    try:
        spans, events, header = read_spans_jsonl(args.file)
        sampled = read_profile_record(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print("error: no spans in file", file=sys.stderr)
        return 2
    truncated = bool(header.get("truncated"))
    if truncated:
        print(
            "warning: span stream was truncated by the recorder cap; "
            "attribution is computed from a partial stream",
            file=sys.stderr,
        )
    if args.trace_chrome:
        from repro.obs.chrome import write_trace_chrome

        try:
            write_trace_chrome(
                args.trace_chrome, spans, events=events, truncated=truncated
            )
        except OSError as exc:
            print(f"warning: cannot write trace: {exc}", file=sys.stderr)
    try:
        print(profile_text(spans, top=args.top, profile=sampled))
    except BrokenPipeError:
        # Downstream pager/head closed early; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def build_flame_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dryadsynth flame",
        description=(
            "Render a sampled stack profile: top-k hottest frames (self and "
            "total samples) from a span dump carrying a profile record "
            "(--sample) or from a .collapsed file, with FlameGraph/"
            "speedscope export and diff-vs-baseline mode."
        ),
    )
    parser.add_argument(
        "target",
        help="a span JSONL dump recorded with --sample, or a .collapsed "
        "collapsed-stack file",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="K",
        help="hottest frames to show (default: 15)",
    )
    parser.add_argument(
        "--collapsed-out",
        metavar="PATH",
        default=None,
        help="export the profile as collapsed-stack text (feed to "
        "flamegraph.pl or drop into speedscope.app)",
    )
    parser.add_argument(
        "--diff",
        metavar="BASELINE",
        default=None,
        help="diff against a baseline profile (span dump or .collapsed): "
        "shows per-frame self-sample share deltas",
    )
    return parser


def _load_stack_profile(path: str):
    """A StackProfile from either a ``.collapsed`` file or a span dump."""
    from repro.obs.sampler import load_collapsed, read_profile_record

    if path.endswith(".collapsed"):
        return load_collapsed(path)
    return read_profile_record(path)


def _render_flame(profile, top: int) -> str:
    total = profile.samples or 1
    lines = [
        f"sampled profile: {profile.samples} samples over "
        f"{profile.duration:.2f}s at {profile.interval * 1000:.0f}ms interval"
        + (f", pids {sorted(profile.pids)}" if profile.pids else "")
    ]
    self_counts = sorted(
        profile.self_counts().items(), key=lambda kv: (-kv[1], kv[0])
    )
    total_counts = profile.total_counts()
    lines.append(f"top {min(top, len(self_counts))} frames by self samples:")
    lines.append(f"  {'self':>6} {'self%':>6} {'total':>6}  frame")
    for frame, count in self_counts[:top]:
        lines.append(
            f"  {count:>6} {100 * count / total:>5.1f}% "
            f"{total_counts.get(frame, count):>6}  {frame}"
        )
    dark = sum(profile.dark.values())
    lines.append(
        f"dark: {dark}/{profile.samples} samples taken outside any span "
        f"({100 * dark / total:.1f}%)"
    )
    return "\n".join(lines)


def _render_flame_diff(profile, baseline, top: int) -> str:
    """Per-frame self-sample *share* deltas vs a baseline profile.

    Shares (fractions of each run's total samples) rather than raw counts,
    so runs of different lengths compare meaningfully.
    """
    ours = profile.self_counts()
    theirs = baseline.self_counts()
    our_total = profile.samples or 1
    their_total = baseline.samples or 1
    deltas = []
    for frame in set(ours) | set(theirs):
        share_now = ours.get(frame, 0) / our_total
        share_then = theirs.get(frame, 0) / their_total
        delta = share_now - share_then
        if abs(delta) > 1e-9:
            deltas.append((delta, frame, share_now, share_then))
    deltas.sort(key=lambda row: (-abs(row[0]), row[1]))
    lines = [
        f"profile diff: {profile.samples} samples vs "
        f"{baseline.samples} baseline samples "
        f"(self-sample share, positive = hotter now)"
    ]
    if not deltas:
        lines.append("  no per-frame share changes")
        return "\n".join(lines)
    lines.append(f"  {'delta':>8} {'now':>7} {'base':>7}  frame")
    for delta, frame, now, then in deltas[:top]:
        lines.append(
            f"  {100 * delta:>+7.1f}% {100 * now:>6.1f}% "
            f"{100 * then:>6.1f}%  {frame}"
        )
    return "\n".join(lines)


def _flame_main(argv) -> int:
    args = build_flame_arg_parser().parse_args(argv)
    try:
        profile = _load_stack_profile(args.target)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if profile is None or not profile.samples:
        print(
            f"error: no sampled profile in {args.target} "
            "(record one with --sample)",
            file=sys.stderr,
        )
        return 2
    if args.collapsed_out:
        from repro.obs.sampler import write_collapsed

        try:
            write_collapsed(profile, args.collapsed_out)
            print(f"; wrote {args.collapsed_out}", file=sys.stderr)
        except OSError as exc:
            print(f"warning: cannot write collapsed profile: {exc}",
                  file=sys.stderr)
    try:
        if args.diff:
            try:
                baseline = _load_stack_profile(args.diff)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if baseline is None or not baseline.samples:
                print(f"error: no sampled profile in {args.diff}",
                      file=sys.stderr)
                return 2
            print(_render_flame_diff(profile, baseline, args.top))
        else:
            print(_render_flame(profile, args.top))
    except BrokenPipeError:
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def build_explain_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dryadsynth explain",
        description=(
            "Explain a synthesis run: the subproblem tree with per-node "
            "wall/SMT attribution, the deduction rule-firing table, and — "
            "for unsolved runs — the failure frontier."
        ),
    )
    parser.add_argument(
        "target",
        help="a span JSONL dump (from --spans-out), or a SyGuS-IF .sl "
        "problem to run and explain in one step",
    )
    parser.add_argument(
        "--solver",
        choices=SOLVER_NAMES,
        default="dryadsynth",
        help="solver to run when TARGET is a problem file",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget when TARGET is a problem file",
    )
    return parser


def _explain_main(argv) -> int:
    from repro.obs.explain import build_explain, render_explain

    args = build_explain_arg_parser().parse_args(argv)
    if args.target.endswith((".jsonl", ".json")):
        from repro.obs.export import read_spans_jsonl

        try:
            spans, events, header = read_spans_jsonl(args.target)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not spans:
            print("error: no spans in file", file=sys.stderr)
            return 2
        truncated = bool(header.get("truncated"))
        report = build_explain(spans, events, truncated=truncated)
    else:
        try:
            problem = parse_sygus_file(args.target)
        except (OSError, Exception) as exc:  # noqa: BLE001 - CLI boundary
            print(f"error: {exc}", file=sys.stderr)
            return 2
        from repro import obs
        from repro.sygus.multi import MultiSygusProblem

        if isinstance(problem, MultiSygusProblem):
            print(
                "error: explain runs single-function problems; solve with "
                "--spans-out and explain the dump instead",
                file=sys.stderr,
            )
            return 2
        solver = make_solver(args.solver, args.timeout)
        with obs.recording() as recorder:
            outcome = solver.synthesize(problem)
        status = "solved" if outcome.solution is not None else (
            "timeout" if outcome.timed_out else "fail"
        )
        print(f"; {args.target}: {status}", file=sys.stderr)
        report = build_explain(
            recorder.spans, recorder.events, truncated=recorder.truncated
        )
    try:
        print(render_explain(report))
    except BrokenPipeError:
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def build_diff_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dryadsynth diff",
        description=(
            "Compare two runs' span dumps: per-node self-wall deltas "
            "aligned by stable node id (they partition the total wall "
            "delta exactly), per-problem movers, solved-set changes, "
            "division-strategy drift and the rule-firing delta table."
        ),
    )
    parser.add_argument("run_a", help="baseline span JSONL (from --spans-out)")
    parser.add_argument("run_b", help="candidate span JSONL to compare")
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="node/problem movers to show (default: 10)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the diff as JSON (repro-run-diff/1) instead of a report",
    )
    return parser


def _diff_main(argv) -> int:
    from repro.obs.diff import diff_from_files, render_diff

    args = build_diff_arg_parser().parse_args(argv)
    try:
        diff = diff_from_files(args.run_a, args.run_b)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(diff.to_json(), indent=1, sort_keys=True))
        else:
            print(render_diff(diff, top=args.top))
    except BrokenPipeError:
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def build_history_arg_parser() -> argparse.ArgumentParser:
    from repro.bench.analytics import DEFAULT_STORE

    parser = argparse.ArgumentParser(
        prog="dryadsynth history",
        description=(
            "Query the per-node analytics store: how a subproblem node "
            "behaved across recorded runs (strategies, deduction rules, "
            "heights, outcomes, self wall).  With no node ids, prints the "
            "store-wide summary of the hottest nodes.  Exit codes: 0 ok, "
            "1 a queried node has no records, 2 usage/IO."
        ),
    )
    parser.add_argument(
        "node_ids",
        nargs="*",
        help="stable node id(s) to query (as printed by explain/diff)",
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        metavar="PATH",
        help=f"analytics JSONL store (default: {DEFAULT_STORE})",
    )
    parser.add_argument(
        "--from-spans",
        default=None,
        metavar="PATH",
        help="fold a span dump (from --spans-out) into a new analytics "
        "record first; with --append it is persisted to the store",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append the --from-spans record to the store",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="nodes in the store-wide summary (default: 10)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit records/aggregates as JSON instead of a report",
    )
    return parser


def _history_main(argv) -> int:
    from repro.bench import analytics

    args = build_history_arg_parser().parse_args(argv)
    records = analytics.load_analytics(args.store)
    if args.from_spans:
        from repro.obs.export import read_spans_jsonl

        try:
            spans, events, _ = read_spans_jsonl(args.from_spans)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        record = analytics.record_from_run(spans, events)
        records.append(record)
        if args.append:
            try:
                analytics.append_analytics(args.store, record)
            except OSError as exc:
                print(f"error: cannot append: {exc}", file=sys.stderr)
                return 2
            print(
                f"recorded {len(record['nodes'])} node(s) into "
                f"{args.store}",
                file=sys.stderr,
            )
    if not args.node_ids:
        if args.json:
            print(json.dumps(records, indent=1, sort_keys=True))
        else:
            print(analytics.render_store_summary(records, top=args.top))
        return 0
    missing = False
    payload = {}
    for node_id in args.node_ids:
        rows = analytics.query_node(records, node_id)
        if not rows:
            missing = True
        if args.json:
            payload[node_id] = {
                "aggregate": analytics.aggregate_node(rows) if rows else None,
                "runs": [entry for _, entry in rows],
            }
        else:
            print(analytics.render_node_history(node_id, rows))
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
    return 1 if missing else 0


def build_smt_replay_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dryadsynth smt-replay",
        description=(
            "Replay a captured SMT query corpus (--smt-corpus) on a fresh "
            "solver: re-check every status, semantically verify every "
            "stored model, and report timing percentiles.  Exit codes: "
            "0 no divergence, 2 usage/IO, 3 corrupt corpus, 4 status "
            "divergence, 5 model divergence."
        ),
    )
    parser.add_argument(
        "corpus",
        help="corpus directory (from --smt-corpus) or a single "
        "*.smtq.jsonl file",
    )
    return parser


def _smt_replay_main(argv) -> int:
    from repro.smt import capture

    args = build_smt_replay_arg_parser().parse_args(argv)
    try:
        report = capture.replay_corpus(args.corpus)
    except capture.CorpusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(capture.render_report(report))
    kinds = report.kinds()
    if capture.KIND_CORRUPT in kinds:
        return 3
    if capture.KIND_STATUS in kinds:
        return 4
    if capture.KIND_MODEL in kinds:
        return 5
    return 0


def build_smt_bench_arg_parser() -> argparse.ArgumentParser:
    from repro.bench.history import (
        DEFAULT_MAX_WALL_GROWTH,
        DEFAULT_WINDOW,
    )

    parser = argparse.ArgumentParser(
        prog="dryadsynth smt-bench",
        description=(
            "Replay the committed SMT query corpus solver-only as a "
            "benchmark: every query re-solved with the semantic query memo "
            "shared across the run, every status and model "
            "divergence-checked, and the total replay wall gated against "
            "the smt-bench records in the regression history.  Exit codes: "
            "0 ok, 1 gate regression, 2 usage/IO, 3 corrupt corpus, "
            "4 status divergence, 5 model divergence."
        ),
    )
    parser.add_argument(
        "corpus",
        nargs="?",
        default="smt_corpus",
        help="corpus directory (from --smt-corpus) or a single "
        "*.smtq.jsonl file (default: smt_corpus)",
    )
    parser.add_argument(
        "--no-memo",
        action="store_true",
        help="disable the query memo: replay every query from scratch "
        "(measures the raw solver path)",
    )
    parser.add_argument(
        "--against",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="history JSONL store to gate against "
        "(default: BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        metavar="N",
        help=f"trailing smt-bench records forming the baseline "
        f"(default: {DEFAULT_WINDOW})",
    )
    parser.add_argument(
        "--max-wall-growth",
        type=float,
        default=DEFAULT_MAX_WALL_GROWTH,
        metavar="FRACTION",
        help="allowed total replay wall growth (default: 0.15 = 15%%)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append this run's record to the history store when it passes",
    )
    parser.add_argument(
        "--record-out",
        default=None,
        metavar="PATH",
        help="also write this run's history record as JSON to PATH "
        "(the CI artifact)",
    )
    parser.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="write one JSON row per corpus file (queries, wall, memo "
        "deltas, divergences) to PATH",
    )
    return parser


def _smt_bench_main(argv) -> int:
    from repro.bench import history as bench_history
    from repro.smt import capture
    from repro.smt import memo as smt_memo

    args = build_smt_bench_arg_parser().parse_args(argv)
    memo = None if args.no_memo else smt_memo.QueryMemo()
    try:
        files = capture.corpus_files(args.corpus)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not files:
        print(
            f"error: no .smtq.jsonl corpus files under {args.corpus!r}",
            file=sys.stderr,
        )
        return 2
    report = capture.ReplayReport()
    rows = []
    for path in files:
        marks = (
            report.entries,
            report.skipped,
            len(report.divergences),
            len(report.replayed_walls),
            memo.hits if memo else 0,
            memo.misses if memo else 0,
        )
        try:
            _, entries = capture.read_corpus_file(path)
        except capture.CorpusError as exc:
            report.files += 1
            report.divergences.append(
                capture.Divergence(path, "-", capture.KIND_CORRUPT, str(exc))
            )
            rows.append({"file": path, "error": str(exc)})
            continue
        report.files += 1
        for lineno, entry in entries:
            report.entries += 1
            capture.replay_entry(path, lineno, entry, report, memo=memo)
        rows.append({
            "file": path,
            "queries": report.entries - marks[0],
            "skipped": report.skipped - marks[1],
            "divergences": len(report.divergences) - marks[2],
            "replayed_wall": round(
                sum(report.replayed_walls[marks[3]:]), 6
            ),
            "memo_hits": (memo.hits if memo else 0) - marks[4],
            "memo_misses": (memo.misses if memo else 0) - marks[5],
        })
    print(capture.render_report(report))
    memo_stats = memo.stats() if memo else {"hits": 0, "misses": 0}
    print(
        f"  query memo: "
        f"{'disabled' if memo is None else 'enabled'}  "
        f"hits={memo_stats['hits']} misses={memo_stats['misses']}"
    )
    bench_report = {
        "queries": report.entries,
        "files": report.files,
        "skipped": report.skipped,
        "divergences": len(report.divergences),
        "replayed_wall": sum(report.replayed_walls),
        "latency": capture.timing_percentiles(report.replayed_walls),
        "memo": {
            "hits": memo_stats["hits"],
            "misses": memo_stats["misses"],
        },
    }
    record = bench_history.record_from_smt_bench(
        bench_report, context={"memo": memo is not None}
    )
    history = bench_history.load_history(args.against)
    comparison = bench_history.compare(
        record,
        history,
        window=args.window,
        max_wall_growth=args.max_wall_growth,
    )
    print(comparison.render())
    if args.jsonl:
        try:
            with open(args.jsonl, "w") as handle:
                for row in rows:
                    handle.write(json.dumps(row, sort_keys=True) + "\n")
        except OSError as exc:
            print(f"warning: cannot write jsonl: {exc}", file=sys.stderr)
    if args.record_out:
        try:
            with open(args.record_out, "w") as handle:
                json.dump(record, handle, indent=1, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(f"warning: cannot write record: {exc}", file=sys.stderr)
    if args.append and comparison.ok:
        try:
            bench_history.append_history(args.against, record)
            print(f"; recorded into {args.against}", file=sys.stderr)
        except OSError as exc:
            print(f"warning: cannot append history: {exc}", file=sys.stderr)
    kinds = report.kinds()
    if capture.KIND_CORRUPT in kinds:
        return 3
    if capture.KIND_STATUS in kinds:
        return 4
    if capture.KIND_MODEL in kinds:
        return 5
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    sys.exit(main())
