"""Reproduction of "Reconciling Enumerative and Deductive Program Synthesis"
(Huang, Qiu, Shen, Wang — PLDI 2020): the DryadSynth cooperative SyGuS
solver for conditional linear integer arithmetic, together with every
substrate it depends on (a from-scratch QF_LIA SMT solver), the baselines it
is evaluated against, and the benchmark harness that regenerates the paper's
figures and table.

Quick start::

    from repro import solve_sygus, parse_sygus_text

    problem = parse_sygus_text(open("max2.sl").read())
    outcome = solve_sygus(problem, timeout=30)
    print(outcome.solution.define_fun())
"""

from typing import Optional

from repro.sygus.parser import parse_sygus_file, parse_sygus_text
from repro.sygus.problem import InvariantProblem, Solution, SygusProblem, SynthFun
from repro.synth import (
    CooperativeSynthesizer,
    HeightEnumerationSynthesizer,
    SynthConfig,
    SynthesisOutcome,
)

__version__ = "1.0.0"


def solve_sygus(
    problem: SygusProblem,
    timeout: Optional[float] = None,
    config: Optional[SynthConfig] = None,
) -> SynthesisOutcome:
    """Solve a SyGuS problem with the cooperative synthesizer (DryadSynth)."""
    if config is None:
        config = SynthConfig(timeout=timeout)
    elif timeout is not None:
        config.timeout = timeout
    return CooperativeSynthesizer(config).synthesize(problem)


__all__ = [
    "__version__",
    "parse_sygus_file",
    "parse_sygus_text",
    "InvariantProblem",
    "Solution",
    "SygusProblem",
    "SynthFun",
    "CooperativeSynthesizer",
    "HeightEnumerationSynthesizer",
    "SynthConfig",
    "SynthesisOutcome",
    "solve_sygus",
]
