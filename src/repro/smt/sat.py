"""A CDCL SAT solver.

Implements the standard modern architecture: two-watched-literal propagation,
first-UIP conflict analysis with clause learning, VSIDS-style activity
decision heuristic, phase saving, Luby-sequence restarts, MiniSat-style
solving under assumptions with final-conflict analysis (unsat assumption
cores), and an activity/LBD-aware learned-clause database reduction policy.

Literals use the DIMACS convention: variable ``v`` (1-based) appears
positively as ``v`` and negatively as ``-v``.  The solver is incremental in
the sense required by lazy SMT: clauses may be added between ``solve`` calls,
and ``solve(assumptions=[...])`` decides satisfiability under a temporary
conjunction of literals without polluting the clause database.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence


class SatSolver:
    """An incremental CDCL solver over integer DIMACS literals."""

    class Interrupted(Exception):
        """Raised when solve() exceeds its deadline (see ``deadline``)."""

    def __init__(self) -> None:
        #: Optional wall-clock deadline (time.monotonic seconds); checked
        #: every few hundred conflicts *and* decisions inside solve().
        self.deadline = None
        #: After an assumption-unsat ``solve``: the subset of the passed
        #: assumption literals whose conjunction is unsatisfiable with the
        #: clause database.  Empty when the database alone is unsat.
        self.unsat_core: List[int] = []
        self._num_vars = 0
        self._clauses: List[Optional[List[int]]] = []
        self._watches: Dict[int, List[int]] = {}
        self._assign: List[int] = [0]  # indexed by var; 0 unset, 1 true, -1 false
        self._level: List[int] = [0]
        self._reason: List[Optional[int]] = [None]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._queue_head = 0
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._order_heap: List[tuple] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._ok = True
        self._conflicts = 0
        self._decisions = 0
        self._restarts = 0
        # Learned-clause database: clause index -> activity, plus the LBD
        # (number of distinct decision levels) recorded at learning time.
        # Clauses added through add_clause() are *permanent* (problem clauses
        # and theory lemmas); only solve()-learned clauses are reducible.
        self._learnts: Dict[int, float] = {}
        self._lbd: Dict[int, int] = {}
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._max_learnts = 4000.0
        self._learnts_deleted = 0

    # -- Problem construction -------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) index."""
        self._num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        heapq.heappush(self._order_heap, (0.0, self._num_vars))
        return self._num_vars

    def _ensure_vars(self, lits: Iterable[int]) -> None:
        needed = max((abs(lit) for lit in lits), default=0)
        while self._num_vars < needed:
            self.new_var()

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause; returns False if the formula became trivially unsat.

        Must be called with the solver at decision level 0 (which is the case
        between ``solve`` invocations, since ``solve`` backtracks fully).
        """
        if not self._ok:
            return False
        self._backtrack(0)
        self._ensure_vars(lits)
        seen: Dict[int, None] = {}
        for lit in lits:
            if -lit in seen:
                return True  # tautology
            seen[lit] = None
        # Drop literals already false at level 0; a clause true at level 0
        # is kept as-is (harmless).
        clause = [
            lit
            for lit in seen
            if not (self._value(lit) == -1 and self._level[abs(lit)] == 0)
        ]
        if any(self._value(lit) == 1 and self._level[abs(lit)] == 0 for lit in clause):
            return True
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            self._uncheckedEnqueue(clause[0], None)
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watch(clause[0], index)
        self._watch(clause[1], index)
        return True

    def _watch(self, lit: int, clause_index: int) -> None:
        self._watches.setdefault(-lit, []).append(clause_index)

    # -- Assignment helpers -----------------------------------------------------

    def _value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        return value if lit > 0 else -value

    def _uncheckedEnqueue(self, lit: int, reason: Optional[int]) -> None:
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            watching = self._watches.get(lit)
            if not watching:
                continue
            kept: List[int] = []
            i = 0
            conflict: Optional[int] = None
            while i < len(watching):
                ci = watching[i]
                i += 1
                clause = self._clauses[ci]
                if clause is None:
                    # Deleted learnt clause; drop the stale watch entry.
                    continue
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                if clause[1] != -lit:
                    # Stale watch entry (watch was moved); drop it.
                    continue
                first = clause[0]
                if self._value(first) == 1:
                    kept.append(ci)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch(clause[1], ci)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(ci)
                if self._value(first) == -1:
                    conflict = ci
                    kept.extend(watching[i:])
                    break
                self._uncheckedEnqueue(first, ci)
            self._watches[lit] = kept
            if conflict is not None:
                return conflict
        return None

    # -- Conflict analysis --------------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        heapq.heappush(self._order_heap, (-self._activity[var], var))
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            # Rebuild the order heap: stale entries keep their pre-rescale
            # keys and would dominate every decision until lazily popped.
            self._order_heap = [
                (-self._activity[v], v)
                for v in range(1, self._num_vars + 1)
                if self._assign[v] == 0
            ]
            heapq.heapify(self._order_heap)

    def _bump_clause(self, clause_index: int) -> None:
        activity = self._learnts.get(clause_index)
        if activity is None:
            return  # permanent clause: no activity bookkeeping
        activity += self._cla_inc
        self._learnts[clause_index] = activity
        if activity > 1e20:
            for index in self._learnts:
                self._learnts[index] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> tuple[List[int], int]:
        """First-UIP conflict analysis; returns (learnt clause, backtrack level)."""
        learnt: List[int] = [0]
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = 0
        index = len(self._trail) - 1
        current_level = len(self._trail_lim)
        self._bump_clause(conflict)
        reason_lits: Sequence[int] = self._clauses[conflict]
        while True:
            for q in reason_lits:
                var = abs(q)
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] >= current_level:
                    counter += 1
                else:
                    learnt.append(q)
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            seen[abs(lit)] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[abs(lit)]
            assert reason is not None, "UIP literal must have a reason"
            self._bump_clause(reason)
            reason_lits = [q for q in self._clauses[reason] if q != lit]
        learnt[0] = -lit
        if len(learnt) == 1:
            return learnt, 0
        max_i = 1
        for i in range(2, len(learnt)):
            if self._level[abs(learnt[i])] > self._level[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    def _analyze_final(self, failed: int) -> List[int]:
        """Final-conflict analysis for a failed assumption literal.

        ``failed`` is an assumption whose complement is implied by the
        clauses together with the *earlier* assumption decisions.  Walking
        the implication graph backwards from it yields the subset of
        assumption decisions responsible — the unsat assumption core.
        """
        core = [failed]
        if not self._trail_lim:
            return core  # falsified at level 0: unsat with no help needed
        seen = [False] * (self._num_vars + 1)
        seen[abs(failed)] = True
        for i in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            lit = self._trail[i]
            var = abs(lit)
            if not seen[var]:
                continue
            reason = self._reason[var]
            if reason is None:
                if self._level[var] > 0:
                    core.append(lit)  # an assumption decision
            else:
                for q in self._clauses[reason]:
                    if abs(q) != var and self._level[abs(q)] > 0:
                        seen[abs(q)] = True
            seen[var] = False
        return core

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._phase[var] = lit > 0
            self._assign[var] = 0
            self._reason[var] = None
            heapq.heappush(self._order_heap, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    # -- Learned-clause database reduction ---------------------------------------

    def _reduce_db(self) -> None:
        """Delete the less useful half of the reducible learnt clauses.

        Called at decision level 0.  Binary clauses, glue clauses (LBD <= 3)
        and clauses locked as the reason of a level-0 implication are kept;
        the rest are ranked by activity and the lower half dropped.  Watch
        entries are removed lazily by propagation.  Deleting learnt clauses
        is always sound (they are implied by the permanent clauses) and
        keeps long-lived incremental sessions bounded in memory.
        """
        locked = {r for r in self._reason if r is not None}
        candidates = [
            ci
            for ci in self._learnts
            if ci not in locked
            and len(self._clauses[ci]) > 2
            and self._lbd.get(ci, 9) > 3
        ]
        candidates.sort(key=lambda ci: self._learnts[ci])
        for ci in candidates[: len(candidates) // 2]:
            self._clauses[ci] = None
            del self._learnts[ci]
            self._lbd.pop(ci, None)
            self._learnts_deleted += 1
        # Let the database grow a little before the next reduction so that
        # mostly-glue databases cannot trigger a reduction every restart.
        self._max_learnts *= 1.1

    # -- Search ------------------------------------------------------------------

    def _decide(self) -> int:
        while self._order_heap:
            _, var = heapq.heappop(self._order_heap)
            if self._assign[var] == 0:
                return var if self._phase[var] else -var
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == 0:
                return var if self._phase[var] else -var
        return 0

    def _check_deadline(self) -> None:
        import time

        if time.monotonic() > self.deadline:
            self._backtrack(0)
            raise SatSolver.Interrupted("SAT deadline exceeded")

    def solve(self, assumptions: Sequence[int] = ()) -> Optional[Dict[int, bool]]:
        """Search for a model; returns ``{var: bool}`` or None if unsat.

        With ``assumptions``, decides satisfiability of the clause database
        under the temporary conjunction of the given literals (MiniSat-style:
        assumptions are enqueued as the first decisions).  On an
        assumption-unsat outcome, :attr:`unsat_core` names the subset of
        assumptions responsible; when it is empty the database itself is
        unsat and the solver stays unsat for every future call.
        """
        self.unsat_core = []
        if not self._ok:
            return None
        self._backtrack(0)
        if assumptions:
            self._ensure_vars(assumptions)
        restart_base = 64
        luby_index = 0
        conflicts_since_restart = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self._conflicts += 1
                conflicts_since_restart += 1
                if self.deadline is not None and self._conflicts % 256 == 0:
                    self._check_deadline()
                if not self._trail_lim:
                    self._ok = False
                    return None
                learnt, back_level = self._analyze(conflict)
                lbd = len({self._level[abs(lit)] for lit in learnt})
                self._backtrack(back_level)
                if len(learnt) == 1:
                    if self._value(learnt[0]) == -1:
                        self._ok = False
                        return None
                    if self._value(learnt[0]) == 0:
                        self._uncheckedEnqueue(learnt[0], None)
                else:
                    index = len(self._clauses)
                    self._clauses.append(learnt)
                    self._watch(learnt[0], index)
                    self._watch(learnt[1], index)
                    self._uncheckedEnqueue(learnt[0], index)
                    self._learnts[index] = self._cla_inc
                    self._lbd[index] = lbd
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if (
                    conflicts_since_restart >= restart_base * luby(luby_index)
                    or len(self._learnts) >= self._max_learnts + 256
                ):
                    luby_index += 1
                    self._restarts += 1
                    conflicts_since_restart = 0
                    self._backtrack(0)
                    if len(self._learnts) > self._max_learnts:
                        self._reduce_db()
                continue
            # Decision path: re-assert pending assumptions first, then pick
            # a free variable.  Deadline is checked here too — propagation-
            # heavy instances may produce few conflicts yet run for long.
            self._decisions += 1
            if self.deadline is not None and self._decisions % 256 == 0:
                self._check_deadline()
            lit = 0
            while len(self._trail_lim) < len(assumptions):
                p = assumptions[len(self._trail_lim)]
                value = self._value(p)
                if value == 1:
                    # Already satisfied: open a dummy decision level so the
                    # remaining assumptions keep their positional levels.
                    self._trail_lim.append(len(self._trail))
                elif value == -1:
                    self.unsat_core = self._analyze_final(p)
                    self._backtrack(0)
                    return None
                else:
                    lit = p
                    break
            if lit == 0:
                lit = self._decide()
                if lit == 0:
                    return {
                        var: self._assign[var] == 1
                        for var in range(1, self._num_vars + 1)
                    }
            self._trail_lim.append(len(self._trail))
            self._uncheckedEnqueue(lit, None)

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_conflicts(self) -> int:
        return self._conflicts

    @property
    def num_decisions(self) -> int:
        """Decision-level choices made over the solver's lifetime."""
        return self._decisions

    @property
    def num_restarts(self) -> int:
        """Luby/DB-pressure restarts performed over the solver's lifetime."""
        return self._restarts

    @property
    def num_learnts(self) -> int:
        """Learnt clauses currently in the database."""
        return len(self._learnts)

    @property
    def num_learnts_deleted(self) -> int:
        """Learnt clauses deleted by database reductions over the lifetime."""
        return self._learnts_deleted


def luby(x: int) -> int:
    """The x-th element (0-based) of the Luby restart sequence 1 1 2 1 1 2 4…

    Port of the classic MiniSat implementation.
    """
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x = x % size
    return 1 << seq
