"""Lazy DPLL(T) driver: SAT abstraction + LIA theory checks.

The solver repeatedly asks the CDCL core for a boolean model of the formula's
skeleton, checks the implied conjunction of linear constraints for integer
feasibility, and — on theory conflict — adds the unsat core as a blocking
lemma.  This is the classic lemmas-on-demand architecture, sufficient and
complete for QF_LIA.
"""

from __future__ import annotations

import enum
import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.obs.log import jlog

logger = logging.getLogger(__name__)
from repro.lang.ast import Kind, Term
from repro.lang.builders import not_
from repro.lang.simplify import simplify
from repro.lang.sorts import BOOL
from repro.lang.traversal import free_vars
from repro.smt import capture as _capture
from repro.smt import memo as _memo
from repro.smt.branch_bound import BudgetExceeded, check_lia
from repro.smt.implicant import extract_implicant
from repro.smt.simplex import pivots_total
from repro.smt.tseitin import CnfEncoder

Value = Union[int, bool]


class Status(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class SolverBudgetExceeded(Exception):
    """The solver ran out of its round/node/time budget."""


@dataclass
class Result:
    """Outcome of a satisfiability check."""

    status: Status
    model: Optional[Dict[str, Value]] = None
    rounds: int = 0
    #: On an UNSAT outcome of ``solve(assumptions=...)``: the subset of the
    #: passed assumption terms whose conjunction with the assertions is
    #: unsatisfiable.  Empty means the assertions alone are unsat — no
    #: choice of assumptions can ever make the query satisfiable.
    unsat_core: Tuple[Term, ...] = ()

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is Status.UNSAT


@dataclass
class SmtStats:
    """Cumulative statistics over a solver's lifetime."""

    checks: int = 0
    rounds: int = 0
    theory_conflicts: int = 0
    #: Theory lemmas asserted as permanent blocking clauses.
    lemmas: int = 0


class SmtSolver:
    """An incremental QF_LIA satisfiability checker.

    Assertions (and the clauses, atom canonicalisation and learned theory
    lemmas derived from them) accumulate across :meth:`check`/:meth:`solve`
    calls on one instance — CEGIS-style loops that strengthen a query keep
    everything already derived.  Use :meth:`reset` (or a fresh instance, as
    :func:`check_sat`/:func:`is_valid` do) for isolated one-shot checks.

    Two mechanisms scope assertions without discarding solver state:

    - :meth:`solve` accepts *assumptions* — Bool terms required for that
      call only.  An UNSAT answer then carries the unsat assumption core.
    - :meth:`push`/:meth:`pop` open and close assertion scopes, implemented
      with activation literals so popped clauses are disabled, never
      removed, and everything learned while they were active survives.
    """

    #: Sentinel: "use the process-wide default query memo".
    USE_DEFAULT_MEMO = object()

    def __init__(
        self,
        max_rounds: int = 100000,
        lia_node_budget: int = 20000,
        deadline: Optional[float] = None,
        memo: object = USE_DEFAULT_MEMO,
    ) -> None:
        self.max_rounds = max_rounds
        self.lia_node_budget = lia_node_budget
        self.deadline = deadline
        self.stats = SmtStats()
        self._encoder = CnfEncoder()
        self._trivially_false = False
        self._scopes: List[int] = []  # activation literal per open scope
        self._scope_marks: List[int] = []  # encoder.asserted length at push
        if memo is SmtSolver.USE_DEFAULT_MEMO:
            memo = _memo.default_memo()
        self.memo: Optional[_memo.QueryMemo] = memo  # type: ignore[assignment]
        self._scopes_used = False
        # Incremental fingerprint state over the asserted-formula prefix
        # (see :meth:`_memo_key`); rebuilt from scratch after a pop().
        self._fp_state = None
        self._fp_count = 0

    def add(self, formula: Term) -> None:
        """Assert a formula (incremental interface).

        Clauses, atom canonicalisation and learned theory lemmas persist
        across :meth:`solve` calls, so CEGIS-style loops that strengthen one
        query keep everything the solver already derived.  Inside an open
        scope (see :meth:`push`) the assertion is guarded by the scope's
        activation literal and dies with the scope.
        """
        if formula.sort is not BOOL:
            raise ValueError("add() expects a Bool-sorted formula")
        formula = simplify(formula)
        if formula.kind is Kind.CONST:
            if not formula.payload:
                if self._scopes:
                    # False inside a scope kills only that scope.
                    self._encoder.sat.add_clause([-self._scopes[-1]])
                else:
                    self._trivially_false = True
            return
        self._encoder.assert_formula(
            formula, guard=self._scopes[-1] if self._scopes else None
        )

    def push(self) -> None:
        """Open an assertion scope; assertions until :meth:`pop` are scoped."""
        # Scoped state (activation literals, scoped ``add(False)``) changes
        # the query without changing the assertion list, which the memo
        # fingerprint cannot see — so a solver that ever scoped is excluded
        # from memoization for its lifetime.
        self._scopes_used = True
        self._scopes.append(self._encoder.sat.new_var())
        self._scope_marks.append(len(self._encoder.asserted))

    def pop(self) -> None:
        """Close the innermost scope, retracting its assertions.

        The scope's activation literal is permanently falsified, which
        vacuously satisfies every clause asserted in the scope — learned
        clauses, atom canonicalisation and theory lemmas all survive.
        """
        if not self._scopes:
            raise ValueError("pop() without a matching push()")
        act = self._scopes.pop()
        mark = self._scope_marks.pop()
        del self._encoder.asserted[mark:]
        self._encoder.sat.add_clause([-act])

    @property
    def num_scopes(self) -> int:
        return len(self._scopes)

    @property
    def learnt_clauses_deleted(self) -> int:
        """Learnt clauses dropped by the SAT core's DB reduction (lifetime)."""
        return self._encoder.sat.num_learnts_deleted

    def reset(self) -> None:
        """Drop every asserted formula, learned lemma and atom table.

        After ``reset`` the instance behaves like a newly constructed solver
        (statistics are kept; they describe the solver's lifetime).
        """
        self._encoder = CnfEncoder()
        self._trivially_false = False
        self._scopes = []
        self._scope_marks = []
        self._scopes_used = False
        self._fp_state = None
        self._fp_count = 0

    def check(self, formula: Term) -> Result:
        """Incremental satisfiability check: ``add(formula)`` then :meth:`solve`.

        Note this is *not* one-shot on a reused instance — assertions from
        earlier ``add``/``check`` calls stay in force, so the result is the
        satisfiability of the conjunction of everything asserted so far.
        Call :meth:`reset` first (or construct a fresh :class:`SmtSolver`,
        as the module-level helpers :func:`check_sat` / :func:`is_valid` do)
        for an isolated check.

        Raises:
            SolverBudgetExceeded: on timeout or budget exhaustion.
        """
        self.add(formula)
        return self.solve()

    def solve(self, assumptions: Sequence[Term] = ()) -> Result:
        """Run the lazy DPLL(T) loop over everything asserted so far.

        ``assumptions`` are Bool terms additionally required *for this call
        only*; nothing about them is retained except what the solver learned
        while exploring them.  When the answer is UNSAT, the result's
        :attr:`~Result.unsat_core` is the subset of assumptions responsible
        (empty when the permanent assertions are unsat by themselves).

        With telemetry enabled (:func:`repro.obs.recording`) every call
        becomes an ``smt.solve`` span and updates the ``smt.*``/``sat.*``
        metrics; disabled, the check below is the entire overhead.  With
        DEBUG-level structured logging (``--log-json`` + a DEBUG threshold)
        every call additionally emits an ``smt.solve`` log event carrying
        the ambient job/problem correlation IDs — the level check is cached
        by :mod:`logging`, so the quiet path stays one lookup.

        With query capture active (:func:`repro.smt.capture.capturing`, the
        ``--smt-corpus`` flag) the call is additionally serialized — query,
        outcome, model and wall time — into the replayable corpus.  Capture
        bypasses the query memo entirely: a recorded corpus must reflect
        real solves.

        When the solver carries a :class:`~repro.smt.memo.QueryMemo` (the
        process-wide default unless constructed with ``memo=None``), a
        query whose ``repro-smtq/1`` fingerprint matches a previously
        *decided* query returns the cached status/model/core without
        running DPLL(T); see :mod:`repro.smt.memo` for the soundness
        argument.
        """
        if _capture.active() is not None:
            return self._solve_captured(assumptions)
        memo = self.memo
        if memo is None or self._scopes_used:
            return self._solve_dispatch(assumptions)
        key = self._memo_key(assumptions)
        cached = memo.lookup(key)
        if cached is not None:
            # A hit is still a check from the caller's perspective; rounds
            # report the original solve's work, stats count no new rounds.
            self.stats.checks += 1
            return cached
        result = self._solve_dispatch(assumptions)
        memo.store(key, result)
        return result

    def _memo_key(self, assumptions: Sequence[Term]) -> bytes:
        """The ``repro-smtq/1`` fingerprint of the active query.

        Folds per-term digests (:func:`repro.smt.memo.term_digest`) of the
        asserted prefix into a running hash that only advances with new
        assertions — a :meth:`pop` shrinks the assertion list and forces a
        rebuild — then mixes in the trivially-false marker and this call's
        assumptions on a copy."""
        import hashlib

        asserted = self._encoder.asserted
        if self._fp_state is None or self._fp_count > len(asserted):
            self._fp_state = hashlib.sha256(_capture.FORMAT.encode("utf-8"))
            self._fp_count = 0
        state = self._fp_state
        for term in asserted[self._fp_count:]:
            state.update(_memo.term_digest(term))
        self._fp_count = len(asserted)
        h = state.copy()
        if self._trivially_false:
            h.update(b"\x01false")
        for term in assumptions:
            h.update(b"\x02")
            h.update(_memo.term_digest(term))
        return h.digest()

    def _solve_dispatch(self, assumptions: Sequence[Term]) -> Result:
        """Route to the plain/logged/traced solve path (see :meth:`solve`)."""
        if obs.active() is None:
            if not logger.isEnabledFor(logging.DEBUG):
                return self._solve_impl(assumptions)
            return self._solve_logged(assumptions)
        return self._solve_traced(assumptions)

    def _solve_captured(self, assumptions: Sequence[Term]) -> Result:
        """One captured solve: snapshot the query, run, record the outcome.

        The snapshot happens *before* solving (the outcome must describe the
        query as issued); a budget abort is recorded as its own status so
        replay can reproduce even aborted queries.
        """
        writer = _capture.active()
        query = writer.snapshot(self, assumptions)
        start = time.monotonic()
        status = "error"
        model = None
        try:
            result = self._solve_dispatch(assumptions)
            status = result.status.value
            model = result.model
            return result
        except SolverBudgetExceeded:
            # A wall-clock abort is an artifact of this run's deadline, not a
            # property of the query; record it distinctly so replay knows the
            # outcome is not reproducible on a fresh, undeadlined solver.
            if self.deadline is not None and time.monotonic() >= self.deadline:
                status = "deadline-exceeded"
            else:
                status = "budget-exceeded"
            raise
        finally:
            writer.record(
                query,
                status,
                model,
                time.monotonic() - start,
                {
                    "max_rounds": self.max_rounds,
                    "lia_node_budget": self.lia_node_budget,
                },
            )

    def _solve_logged(self, assumptions: Sequence[Term]) -> Result:
        """One log-only solve (telemetry off, DEBUG logging on)."""
        start = time.monotonic()
        rounds_before = self.stats.rounds
        status = "error"
        try:
            result = self._solve_impl(assumptions)
            status = result.status.value
            return result
        finally:
            jlog(
                logger, "smt.solve", level=logging.DEBUG, status=status,
                rounds=self.stats.rounds - rounds_before,
                wall=round(time.monotonic() - start, 6),
            )

    def _solve_traced(self, assumptions: Sequence[Term]) -> Result:
        """One telemetered solve: an ``smt.solve`` span plus metric deltas."""
        sat = self._encoder.sat
        registry = obs.metrics()
        before = (
            self.stats.rounds,
            self.stats.lemmas,
            self.stats.theory_conflicts,
            sat.num_conflicts,
            sat.num_decisions,
            sat.num_learnts_deleted,
            pivots_total(),
        )
        start = time.monotonic()
        with obs.span("smt.solve", assumptions=len(assumptions)) as span:
            status = "error"
            result: Optional[Result] = None
            try:
                result = self._solve_impl(assumptions)
                status = result.status.value
                return result
            finally:
                wall = time.monotonic() - start
                rounds = self.stats.rounds - before[0]
                pivots = pivots_total() - before[6]
                registry.counter("smt.checks").inc()
                registry.counter("smt.rounds").inc(rounds)
                registry.counter("smt.lemmas").inc(self.stats.lemmas - before[1])
                registry.counter("smt.theory_conflicts").inc(
                    self.stats.theory_conflicts - before[2]
                )
                registry.counter("sat.conflicts").inc(sat.num_conflicts - before[3])
                registry.counter("sat.decisions").inc(sat.num_decisions - before[4])
                registry.counter("sat.learnts_deleted").inc(
                    sat.num_learnts_deleted - before[5]
                )
                registry.counter("smt.simplex_pivots").inc(pivots)
                registry.gauge("sat.learnts").set_max(sat.num_learnts)
                registry.gauge("sat.vars").set_max(sat.num_vars)
                registry.histogram("smt.solve_seconds").observe(wall)
                span.set(status=status, rounds=rounds, pivots=pivots)
                jlog(
                    logger, "smt.solve", level=logging.DEBUG, status=status,
                    rounds=rounds, wall=round(wall, 6),
                )

    def _solve_impl(self, assumptions: Sequence[Term] = ()) -> Result:
        self.stats.checks += 1
        if self._trivially_false:
            return Result(Status.UNSAT, None, 0)
        encoder = self._encoder
        assumption_lits: List[int] = []
        lit_to_term: Dict[int, Term] = {}
        prepared_assumptions: List[Term] = []
        for term in assumptions:
            if term.sort is not BOOL:
                raise ValueError("assumptions must be Bool-sorted formulas")
            simplified = simplify(term)
            if simplified.kind is Kind.CONST:
                if simplified.payload:
                    continue
                return Result(Status.UNSAT, None, 0, unsat_core=(term,))
            prepared, lit = encoder.prepare_literal(simplified)
            prepared_assumptions.append(prepared)
            assumption_lits.append(lit)
            lit_to_term.setdefault(lit, term)
        if not encoder.asserted and not prepared_assumptions:
            return Result(Status.SAT, {}, 0)
        sat_assumptions = list(self._scopes) + assumption_lits
        rounds = 0
        while True:
            rounds += 1
            self.stats.rounds += 1
            if rounds > self.max_rounds:
                raise SolverBudgetExceeded(f"exceeded {self.max_rounds} DPLL(T) rounds")
            if self.deadline is not None and time.monotonic() > self.deadline:
                raise SolverBudgetExceeded("SMT deadline exceeded")
            encoder.sat.deadline = self.deadline
            try:
                sat_model = encoder.sat.solve(assumptions=sat_assumptions)
            except encoder.sat.Interrupted as exc:
                raise SolverBudgetExceeded(str(exc)) from exc
            if sat_model is None:
                failed = set(encoder.sat.unsat_core)
                core = tuple(
                    lit_to_term[lit]
                    for lit in assumption_lits
                    if lit in failed and lit in lit_to_term
                )
                return Result(Status.UNSAT, None, rounds, unsat_core=core)
            # Only the atoms of a satisfying implicant go to the theory
            # solver; conflicts then yield small, reusable lemmas.
            needed = extract_implicant(encoder, sat_model, prepared_assumptions)
            constraints = []
            for atom, positive in needed.items():
                var = encoder.atom_vars[atom]
                expr = atom.to_linexpr() if positive else atom.negate().to_linexpr()
                lit = var if positive else -var
                constraints.append((expr, lit))
            try:
                feasible, payload = check_lia(
                    constraints, self.lia_node_budget, self.deadline
                )
            except BudgetExceeded as exc:
                raise SolverBudgetExceeded(str(exc)) from exc
            if feasible:
                model = self._build_model(
                    payload, encoder, sat_model, prepared_assumptions
                )
                return Result(Status.SAT, model, rounds)
            self.stats.theory_conflicts += 1
            core = payload
            if not core:
                return Result(Status.UNSAT, None, rounds)
            core = self._minimize_core(constraints, core)
            encoder.sat.add_clause([-lit for lit in core])
            self.stats.lemmas += 1

    def _minimize_core(self, constraints, core):
        """Deletion-based core shrinking: smaller cores mean stronger lemmas.

        Each candidate deletion costs one LIA feasibility check on a small
        conjunction, which is far cheaper than the extra DPLL(T) rounds a fat
        lemma causes.
        """
        if len(core) <= 4 or len(core) > 24:
            return core
        by_tag = {tag: expr for expr, tag in constraints}
        current = list(core)
        checks_left = 12
        index = 0
        # Single linear deletion pass with a tiny node budget per check;
        # minimisation is strictly best-effort.
        while index < len(current) and len(current) > 1 and checks_left > 0:
            trial = current[:index] + current[index + 1 :]
            checks_left -= 1
            try:
                feasible, payload = check_lia(
                    [(by_tag[t], t) for t in trial], 60, self.deadline
                )
            except BudgetExceeded:
                # Node budget or deadline hit: stop shrinking, keep what we
                # have — minimisation must never overshoot a near-expired
                # deadline.
                return current
            if feasible:
                index += 1
            else:
                payload_set = set(payload)
                shrunk = [t for t in trial if t in payload_set]
                current = shrunk or trial
        return current

    def _build_model(
        self,
        int_model: Dict[str, int],
        encoder: CnfEncoder,
        sat_model: Dict[int, bool],
        extra: Sequence[Term] = (),
    ) -> Dict[str, Value]:
        model: Dict[str, Value] = dict(int_model)
        for name, var in encoder.bool_vars.items():
            model[name] = sat_model[var]
        for formula in list(encoder.asserted) + list(extra):
            for var_term in free_vars(formula):
                name = var_term.payload
                if name not in model:
                    model[name] = False if var_term.sort is BOOL else 0
        return model


def check_sat(
    formula: Term,
    deadline: Optional[float] = None,
) -> Result:
    """Convenience one-shot satisfiability check."""
    return SmtSolver(deadline=deadline).check(formula)


def is_valid(
    formula: Term,
    deadline: Optional[float] = None,
) -> Tuple[bool, Optional[Dict[str, Value]]]:
    """Validity check; returns ``(True, None)`` or ``(False, counterexample)``."""
    result = SmtSolver(deadline=deadline).check(not_(formula))
    if result.is_unsat:
        return True, None
    if result.is_sat:
        return False, result.model
    raise SolverBudgetExceeded("validity check returned unknown")


def get_counterexample(
    formula: Term,
    deadline: Optional[float] = None,
) -> Optional[Dict[str, Value]]:
    """A falsifying assignment for ``formula``, or None if it is valid."""
    valid, counterexample = is_valid(formula, deadline)
    return None if valid else counterexample
