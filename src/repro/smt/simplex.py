"""Exact rational simplex for bound-constrained linear variables.

This is the general simplex of Dutertre and de Moura ("A fast linear-
arithmetic solver for DPLL(T)", CAV 2006): variables carry optional
lower/upper bounds, auxiliary (slack) variables are defined as linear
combinations of the originals, and a Bland-rule pivoting loop either finds
an assignment within all bounds or reports a conflicting set of bounds (the
infeasibility explanation used for DPLL(T) lemmas).

Arithmetic uses the tuple rationals of :mod:`repro.smt.rational` rather than
``fractions.Fraction``; the public interface (:class:`Bound`, :meth:`value`)
still speaks ``Fraction``.
"""

from __future__ import annotations

#: Process-wide pivot tally (index 0), read by the telemetry layer: the SMT
#: driver reports per-query deltas of :func:`pivots_total` as the
#: ``smt.simplex_pivots`` metric.  A bare list keeps the hot-path cost to a
#: single indexed increment.
_PIVOT_TALLY = [0]


def pivots_total() -> int:
    """Simplex pivots performed by this process since import."""
    return _PIVOT_TALLY[0]

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.smt.rational import (
    Rat,
    ZERO,
    from_fraction,
    is_zero,
    radd,
    rdiv,
    rlt,
    rmul,
    rneg,
    rsub,
    to_fraction,
)


@dataclass(frozen=True)
class Bound:
    """A bound ``var >= value`` (lower) or ``var <= value`` (upper).

    ``tag`` identifies the asserting atom for conflict explanations; ``None``
    marks artificial bounds (e.g. small-model boxes) that are dropped from
    explanations.
    """

    var: int
    is_lower: bool
    value: Fraction
    tag: Optional[object] = None


class Conflict(Exception):
    """Raised when the asserted bounds are jointly infeasible."""

    def __init__(self, bounds: Sequence[Bound]):
        super().__init__("infeasible bounds")
        self.bounds = list(bounds)


class Simplex:
    """Feasibility checker for a system of bounded linear variables.

    Usage: create variables with :meth:`new_var`, define slack variables with
    :meth:`new_slack`, assert bounds with :meth:`assert_bound`, then call
    :meth:`check`.
    """

    def __init__(self) -> None:
        self._num_vars = 0
        # Tableau: basic var -> {nonbasic var: coeff}.
        self._rows: Dict[int, Dict[int, Rat]] = {}
        self._is_basic: List[bool] = []
        self._lower: List[Optional[Bound]] = []
        self._upper: List[Optional[Bound]] = []
        self._lower_val: List[Optional[Rat]] = []
        self._upper_val: List[Optional[Rat]] = []
        self._assign: List[Rat] = []

    def new_var(self) -> int:
        index = self._num_vars
        self._num_vars += 1
        self._is_basic.append(False)
        self._lower.append(None)
        self._upper.append(None)
        self._lower_val.append(None)
        self._upper_val.append(None)
        self._assign.append(ZERO)
        return index

    def new_slack(self, combo: Dict[int, Fraction]) -> int:
        """A fresh basic variable defined as ``sum(coeff * var)``."""
        index = self.new_var()
        row: Dict[int, Rat] = {}
        for var, fraction_coeff in combo.items():
            coeff = from_fraction(Fraction(fraction_coeff))
            if is_zero(coeff):
                continue
            if self._is_basic[var]:
                for inner_var, inner_coeff in self._rows[var].items():
                    merged = radd(row.get(inner_var, ZERO), rmul(coeff, inner_coeff))
                    if is_zero(merged):
                        row.pop(inner_var, None)
                    else:
                        row[inner_var] = merged
            else:
                merged = radd(row.get(var, ZERO), coeff)
                if is_zero(merged):
                    row.pop(var, None)
                else:
                    row[var] = merged
        value = ZERO
        for var, coeff in row.items():
            value = radd(value, rmul(coeff, self._assign[var]))
        self._rows[index] = row
        self._is_basic[index] = True
        self._assign[index] = value
        return index

    def assert_bound(self, bound: Bound) -> None:
        """Assert a bound, keeping only the strongest per direction."""
        value = from_fraction(bound.value)
        store_val = self._lower_val if bound.is_lower else self._upper_val
        store = self._lower if bound.is_lower else self._upper
        current = store_val[bound.var]
        if current is not None:
            if bound.is_lower and not rlt(current, value):
                return
            if not bound.is_lower and not rlt(value, current):
                return
        opposite_val = (
            self._upper_val[bound.var] if bound.is_lower else self._lower_val[bound.var]
        )
        if opposite_val is not None:
            opposite = (
                self._upper[bound.var] if bound.is_lower else self._lower[bound.var]
            )
            if bound.is_lower and rlt(opposite_val, value):
                raise Conflict([bound, opposite])
            if not bound.is_lower and rlt(value, opposite_val):
                raise Conflict([bound, opposite])
        store[bound.var] = bound
        store_val[bound.var] = value
        var = bound.var
        if not self._is_basic[var]:
            if bound.is_lower and rlt(self._assign[var], value):
                self._update(var, value)
            elif not bound.is_lower and rlt(value, self._assign[var]):
                self._update(var, value)

    def _update(self, nonbasic: int, value: Rat) -> None:
        delta = rsub(value, self._assign[nonbasic])
        if is_zero(delta):
            return
        self._assign[nonbasic] = value
        for basic, row in self._rows.items():
            coeff = row.get(nonbasic)
            if coeff is not None:
                self._assign[basic] = radd(self._assign[basic], rmul(coeff, delta))

    def _pivot(self, basic: int, nonbasic: int) -> None:
        _PIVOT_TALLY[0] += 1
        row = self._rows.pop(basic)
        coeff = row.pop(nonbasic)
        # basic = coeff * nonbasic + rest  =>  nonbasic = (basic - rest)/coeff
        inverse = rdiv((1, 1), coeff)
        new_row: Dict[int, Rat] = {basic: inverse}
        for var, c in row.items():
            new_row[var] = rneg(rdiv(c, coeff))
        self._is_basic[basic] = False
        self._is_basic[nonbasic] = True
        self._rows[nonbasic] = new_row
        # Substitute into all other rows mentioning `nonbasic`.
        for other, other_row in self._rows.items():
            if other == nonbasic:
                continue
            factor = other_row.pop(nonbasic, None)
            if factor is None:
                continue
            for var, c in new_row.items():
                merged = radd(other_row.get(var, ZERO), rmul(factor, c))
                if is_zero(merged):
                    other_row.pop(var, None)
                else:
                    other_row[var] = merged

    def _pivot_and_update(self, basic: int, nonbasic: int, value: Rat) -> None:
        row = self._rows[basic]
        coeff = row[nonbasic]
        theta = rdiv(rsub(value, self._assign[basic]), coeff)
        self._assign[basic] = value
        self._assign[nonbasic] = radd(self._assign[nonbasic], theta)
        for other, other_row in self._rows.items():
            if other == basic:
                continue
            c = other_row.get(nonbasic)
            if c is not None:
                self._assign[other] = radd(self._assign[other], rmul(c, theta))
        self._pivot(basic, nonbasic)

    def check(self) -> bool:
        """Pivot until all bounds hold.

        Returns True and leaves a feasible assignment in place, or raises
        :class:`Conflict` carrying the explanation bounds.
        """
        while True:
            violated = self._find_violated_basic()
            if violated is None:
                return True
            basic, need_increase = violated
            row = self._rows[basic]
            target = (
                self._lower_val[basic] if need_increase else self._upper_val[basic]
            )
            assert target is not None
            pivot_var = self._find_pivot(row, need_increase)
            if pivot_var is None:
                raise Conflict(self._explain(basic, need_increase))
            self._pivot_and_update(basic, pivot_var, target)

    def _find_violated_basic(self) -> Optional[Tuple[int, bool]]:
        # Bland's rule: smallest index first, guaranteeing termination.
        best = None
        for basic in self._rows:
            if best is not None and basic >= best[0]:
                continue
            lower = self._lower_val[basic]
            if lower is not None and rlt(self._assign[basic], lower):
                best = (basic, True)
                continue
            upper = self._upper_val[basic]
            if upper is not None and rlt(upper, self._assign[basic]):
                best = (basic, False)
        return best

    def _find_pivot(self, row: Dict[int, Rat], need_increase: bool) -> Optional[int]:
        best = None
        for nonbasic, coeff in row.items():
            if best is not None and nonbasic >= best:
                continue
            positive = coeff[0] > 0
            if need_increase:
                can_help = (positive and self._can_increase(nonbasic)) or (
                    not positive and self._can_decrease(nonbasic)
                )
            else:
                can_help = (positive and self._can_decrease(nonbasic)) or (
                    not positive and self._can_increase(nonbasic)
                )
            if can_help:
                best = nonbasic
        return best

    def _can_increase(self, var: int) -> bool:
        upper = self._upper_val[var]
        return upper is None or rlt(self._assign[var], upper)

    def _can_decrease(self, var: int) -> bool:
        lower = self._lower_val[var]
        return lower is None or rlt(lower, self._assign[var])

    def _explain(self, basic: int, need_increase: bool) -> List[Bound]:
        """Bounds responsible for the infeasibility of ``basic``'s row."""
        explanation: List[Bound] = []
        own = self._lower[basic] if need_increase else self._upper[basic]
        assert own is not None
        explanation.append(own)
        for nonbasic, coeff in self._rows[basic].items():
            positive = coeff[0] > 0
            if need_increase:
                blocking = self._upper[nonbasic] if positive else self._lower[nonbasic]
            else:
                blocking = self._lower[nonbasic] if positive else self._upper[nonbasic]
            assert blocking is not None, "pivot search said this bound blocks"
            explanation.append(blocking)
        return explanation

    def value(self, var: int) -> Fraction:
        return to_fraction(self._assign[var])

    def raw_value(self, var: int) -> Rat:
        return self._assign[var]

    @property
    def num_vars(self) -> int:
        return self._num_vars
