"""Lightweight exact rationals for the simplex hot loops.

A rational is a plain tuple ``(num, den)`` with ``den > 0``.  Unlike
``fractions.Fraction``, results are *not* normalised on every operation —
only opportunistically when the components grow — which removes the
per-operation object construction and gcd cost that dominates pure-Python
simplex otherwise (this one change is worth ~3-4x on the SMT substrate).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Tuple

Rat = Tuple[int, int]

ZERO: Rat = (0, 1)
ONE: Rat = (1, 1)

#: Normalise lazily once components exceed this many bits.
_NORMALISE_BITS = 64


def rnorm(num: int, den: int) -> Rat:
    """Normalise to lowest terms with a positive denominator."""
    if den < 0:
        num, den = -num, -den
    if num == 0:
        return ZERO
    g = gcd(num, den)
    if g > 1:
        num //= g
        den //= g
    return (num, den)


def _maybe_norm(num: int, den: int) -> Rat:
    if den < 0:
        num, den = -num, -den
    if den.bit_length() > _NORMALISE_BITS or num.bit_length() > _NORMALISE_BITS:
        return rnorm(num, den)
    return (num, den)


def from_int(value: int) -> Rat:
    return (value, 1)


def from_fraction(value: Fraction) -> Rat:
    return (value.numerator, value.denominator)


def to_fraction(a: Rat) -> Fraction:
    return Fraction(a[0], a[1])


def radd(a: Rat, b: Rat) -> Rat:
    if a[1] == b[1]:
        return _maybe_norm(a[0] + b[0], a[1])
    return _maybe_norm(a[0] * b[1] + b[0] * a[1], a[1] * b[1])


def rsub(a: Rat, b: Rat) -> Rat:
    if a[1] == b[1]:
        return _maybe_norm(a[0] - b[0], a[1])
    return _maybe_norm(a[0] * b[1] - b[0] * a[1], a[1] * b[1])


def rmul(a: Rat, b: Rat) -> Rat:
    return _maybe_norm(a[0] * b[0], a[1] * b[1])


def rdiv(a: Rat, b: Rat) -> Rat:
    if b[0] == 0:
        raise ZeroDivisionError("rational division by zero")
    return _maybe_norm(a[0] * b[1], a[1] * b[0])


def rneg(a: Rat) -> Rat:
    return (-a[0], a[1])


def is_zero(a: Rat) -> bool:
    return a[0] == 0


def sign(a: Rat) -> int:
    if a[0] > 0:
        return 1
    if a[0] < 0:
        return -1
    return 0


def rlt(a: Rat, b: Rat) -> bool:
    return a[0] * b[1] < b[0] * a[1]


def rle(a: Rat, b: Rat) -> bool:
    return a[0] * b[1] <= b[0] * a[1]


def req(a: Rat, b: Rat) -> bool:
    return a[0] * b[1] == b[0] * a[1]


def rfloor(a: Rat) -> int:
    return a[0] // a[1]


def is_integral(a: Rat) -> bool:
    return a[0] % a[1] == 0
