"""Formula normalisation and Tseitin CNF encoding.

Pipeline: integer ``ite`` terms are lifted out of comparisons, integer
equalities split into two inequalities, every comparison canonicalised into a
:class:`~repro.smt.linear.LinAtom`, and the boolean skeleton is encoded into
CNF with one SAT variable per distinct atom/boolean variable and one
definition variable per connective (Tseitin transformation).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.lang.ast import Kind, Term
from repro.lang.builders import and_, eq, ge, int_const
from repro.lang.sorts import BOOL, INT
from repro.lang.traversal import rewrite_bottom_up
from repro.smt.linear import LinAtom, canonical_atom, term_to_linexpr
from repro.smt.sat import SatSolver

_COMPARISON_KINDS = (Kind.GE, Kind.GT, Kind.LE, Kind.LT)


def lift_ite(term: Term) -> Term:
    """Pull integer ``ite`` subterms out of comparisons and arithmetic.

    After this pass, every ``ite`` in the formula has boolean branches (it is
    part of the boolean skeleton), so comparisons are purely linear.
    """

    def rw(t: Term) -> Term:
        if t.sort is not BOOL and t.kind is not Kind.ITE and t.args:
            # An arithmetic node: hoist an ite child upward.
            for i, child in enumerate(t.args):
                if child.kind is Kind.ITE:
                    cond, then, els = child.args
                    then_args = t.args[:i] + (then,) + t.args[i + 1 :]
                    else_args = t.args[:i] + (els,) + t.args[i + 1 :]
                    lifted = Term.make(
                        Kind.ITE,
                        (
                            cond,
                            rw(Term.make(t.kind, then_args, t.payload, t.sort)),
                            rw(Term.make(t.kind, else_args, t.payload, t.sort)),
                        ),
                    )
                    return lifted
        if t.sort is BOOL and t.kind in (*_COMPARISON_KINDS, Kind.EQ):
            for i, child in enumerate(t.args):
                if child.sort is INT and child.kind is Kind.ITE:
                    cond, then, els = child.args
                    then_args = t.args[:i] + (then,) + t.args[i + 1 :]
                    else_args = t.args[:i] + (els,) + t.args[i + 1 :]
                    return Term.make(
                        Kind.ITE,
                        (
                            cond,
                            rw(Term.make(t.kind, then_args, t.payload, t.sort)),
                            rw(Term.make(t.kind, else_args, t.payload, t.sort)),
                        ),
                    )
        return t

    return rewrite_bottom_up(term, rw)


def split_int_eq(term: Term) -> Term:
    """Rewrite integer equalities ``a = b`` into ``a >= b and a <= b``."""

    def rw(t: Term) -> Term:
        if t.kind is Kind.EQ and t.args[0].sort is INT:
            a, b = t.args
            return and_(ge(a, b), ge(b, a))
        return t

    return rewrite_bottom_up(term, rw)


class CnfEncoder:
    """Encodes formulas into a :class:`SatSolver`, tracking theory atoms."""

    def __init__(self, sat: Optional[SatSolver] = None) -> None:
        self.sat = sat or SatSolver()
        self.atom_vars: Dict[LinAtom, int] = {}
        self.bool_vars: Dict[str, int] = {}
        #: Comparison term -> (atom or None, positive, trivial truth value).
        self.comparison_info: Dict[Term, Tuple[Optional[LinAtom], bool, Optional[bool]]] = {}
        self._term_lits: Dict[Term, int] = {}
        self._true_lit: Optional[int] = None
        self.asserted: list[Term] = []

    def true_lit(self) -> int:
        if self._true_lit is None:
            var = self.sat.new_var()
            self.sat.add_clause([var])
            self._true_lit = var
        return self._true_lit

    def assert_formula(self, formula: Term, guard: Optional[int] = None) -> Term:
        """Normalise, encode, and assert ``formula``; returns the prepared form.

        With ``guard`` (a SAT variable acting as an activation literal) the
        assertion is conditional: the clause ``guard -> formula`` is added
        instead of the unit, so the formula is only in force while ``guard``
        is assumed true.  This is how scoped (push/pop) assertions are
        encoded without ever removing clauses.
        """
        prepared = split_int_eq(lift_ite(formula))
        lit = self.encode(prepared)
        self.sat.add_clause([lit] if guard is None else [-guard, lit])
        self.asserted.append(prepared)
        return prepared

    def prepare_literal(self, formula: Term) -> Tuple[Term, int]:
        """Normalise and encode ``formula`` *without* asserting it.

        Returns ``(prepared form, SAT literal)``.  Used for assumptions: the
        literal can be passed to :meth:`SatSolver.solve` to require the
        formula for one call only.
        """
        prepared = split_int_eq(lift_ite(formula))
        return prepared, self.encode(prepared)

    def atom_literal(self, atom: LinAtom, positive: bool) -> int:
        var = self.atom_vars.get(atom)
        if var is None:
            var = self.sat.new_var()
            self.atom_vars[atom] = var
        return var if positive else -var

    def encode(self, term: Term) -> int:
        """Returns a SAT literal equivalent to the (normalised) formula."""
        hit = self._term_lits.get(term)
        if hit is not None:
            return hit
        lit = self._encode_uncached(term)
        self._term_lits[term] = lit
        return lit

    def _encode_uncached(self, term: Term) -> int:
        kind = term.kind
        if kind is Kind.CONST:
            return self.true_lit() if term.payload else -self.true_lit()
        if kind is Kind.VAR:
            name = term.payload
            var = self.bool_vars.get(name)  # type: ignore[arg-type]
            if var is None:
                var = self.sat.new_var()
                self.bool_vars[name] = var  # type: ignore[index]
            return var
        if kind in _COMPARISON_KINDS:
            return self._encode_comparison(term)
        if kind is Kind.NOT:
            return -self.encode(term.args[0])
        if kind is Kind.AND:
            lits = [self.encode(a) for a in term.args]
            out = self.sat.new_var()
            for lit in lits:
                self.sat.add_clause([-out, lit])
            self.sat.add_clause([out] + [-lit for lit in lits])
            return out
        if kind is Kind.OR:
            lits = [self.encode(a) for a in term.args]
            out = self.sat.new_var()
            for lit in lits:
                self.sat.add_clause([out, -lit])
            self.sat.add_clause([-out] + lits)
            return out
        if kind is Kind.IMPLIES:
            a = self.encode(term.args[0])
            b = self.encode(term.args[1])
            out = self.sat.new_var()
            self.sat.add_clause([-out, -a, b])
            self.sat.add_clause([out, a])
            self.sat.add_clause([out, -b])
            return out
        if kind is Kind.EQ:  # boolean equivalence after split_int_eq
            a = self.encode(term.args[0])
            b = self.encode(term.args[1])
            out = self.sat.new_var()
            self.sat.add_clause([-out, -a, b])
            self.sat.add_clause([-out, a, -b])
            self.sat.add_clause([out, a, b])
            self.sat.add_clause([out, -a, -b])
            return out
        if kind is Kind.ITE:
            c = self.encode(term.args[0])
            t = self.encode(term.args[1])
            e = self.encode(term.args[2])
            out = self.sat.new_var()
            self.sat.add_clause([-out, -c, t])
            self.sat.add_clause([-out, c, e])
            self.sat.add_clause([out, -c, -t])
            self.sat.add_clause([out, c, -e])
            return out
        if kind is Kind.APP:
            raise ValueError(
                f"function application {term.payload!r} reached the SMT layer; "
                "inline synthesized/interpreted functions first"
            )
        raise ValueError(f"cannot encode term of kind {kind}: {term!r}")

    def _encode_comparison(self, term: Term) -> int:
        left, right = term.args
        kind = term.kind
        if kind is Kind.GE:
            diff = _linexpr_diff(left, right, 0)
        elif kind is Kind.GT:
            diff = _linexpr_diff(left, right, -1)
        elif kind is Kind.LE:
            diff = _linexpr_diff(right, left, 0)
        else:  # LT
            diff = _linexpr_diff(right, left, -1)
        atom, positive = canonical_atom(diff)
        if not atom.coeffs:
            # Trivial atom: constant truth value.
            truth = (atom.const >= 0) == positive
            self.comparison_info[term] = (None, positive, truth)
            return self.true_lit() if truth else -self.true_lit()
        self.comparison_info[term] = (atom, positive, None)
        return self.atom_literal(atom, positive)


def _linexpr_diff(left: Term, right: Term, offset: int):
    return (
        term_to_linexpr(left)
        - term_to_linexpr(right)
        + term_to_linexpr(int_const(offset))
    )
