"""Objective minimisation over QF_LIA (a small OMT layer).

``minimize_objective`` finds a model of a formula minimising an integer
objective term, by branch-and-bound at the formula level: find any model,
then repeatedly ask the solver for a strictly better one, narrowing with
binary search between the best known value and a lower bound discovered by
exponential probing.

Used by the synthesis layer to bias fixed-height solutions toward small
coefficients, and generally useful as a substrate utility.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.lang.ast import Term
from repro.lang.builders import and_, le
from repro.lang.evaluator import Value, evaluate
from repro.smt.solver import SmtSolver, SolverBudgetExceeded, Status


class Unsatisfiable(Exception):
    """The formula has no model at all."""


def _check(
    formula: Term,
    deadline: Optional[float],
    lia_node_budget: int,
):
    solver = SmtSolver(lia_node_budget=lia_node_budget, deadline=deadline)
    return solver.check(formula)


def minimize_objective(
    formula: Term,
    objective: Term,
    deadline: Optional[float] = None,
    max_checks: int = 32,
    lia_node_budget: int = 20000,
) -> Tuple[int, Dict[str, Value]]:
    """A model of ``formula`` minimising ``objective``.

    Returns ``(optimal value, model)``.  When the check budget runs out the
    best model found so far is returned (sound, possibly suboptimal).

    Raises:
        Unsatisfiable: when the formula has no model.
        SolverBudgetExceeded: when the underlying solver times out before
            any model is found.
    """
    result = _check(formula, deadline, lia_node_budget)
    if result.status is not Status.SAT:
        raise Unsatisfiable("formula has no model")
    assert result.model is not None
    best_model = result.model
    best_value = int(evaluate(objective, best_model))
    checks_left = max_checks

    # Exponential probe for a lower bound.
    lower: Optional[int] = None
    step = 1
    while checks_left > 0:
        probe = best_value - step
        checks_left -= 1
        try:
            result = _check(
                and_(formula, le(objective, probe)), deadline, lia_node_budget
            )
        except SolverBudgetExceeded:
            return best_value, best_model
        if result.status is Status.SAT:
            assert result.model is not None
            best_model = result.model
            best_value = int(evaluate(objective, best_model))
            step *= 2
        else:
            lower = probe + 1
            break
    if lower is None:
        return best_value, best_model

    # Binary search in [lower, best_value].
    while lower < best_value and checks_left > 0:
        mid = (lower + best_value) // 2
        checks_left -= 1
        try:
            result = _check(
                and_(formula, le(objective, mid)), deadline, lia_node_budget
            )
        except SolverBudgetExceeded:
            break
        if result.status is Status.SAT:
            assert result.model is not None
            best_model = result.model
            best_value = int(evaluate(objective, best_model))
        else:
            lower = mid + 1
    return best_value, best_model
