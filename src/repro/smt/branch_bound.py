"""Integer feasibility for conjunctions of linear constraints.

Layered on the rational simplex: solve the LP relaxation, then branch on a
variable with a fractional value (``x <= floor(v)`` versus ``x >= ceil(v)``).
Completeness over the integers is guaranteed by a small-model bounding box
(Papadimitriou 1981: a feasible integer system has a solution within
``n * (m * a)^(2m+1)``), which turns branch-and-bound into a finite search.

The result is either an integer model or an *unsat core*: a subset of the
input constraint tags whose conjunction is LIA-infeasible.  Cores drive the
DPLL(T) lemma generation in :mod:`repro.smt.solver`.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.smt.linear import LinExpr
from repro.smt.simplex import Bound, Conflict, Simplex

#: Tag marking bounds introduced by branching; removed from cores level-wise.
class _BranchTag:
    __slots__ = ()


class BudgetExceeded(Exception):
    """Raised when branch-and-bound exceeds its node budget."""


LiaResult = Tuple[bool, Union[Dict[str, int], List[object]]]


def check_lia(
    constraints: Sequence[Tuple[LinExpr, object]],
    max_nodes: int = 20000,
    deadline: Optional[float] = None,
) -> LiaResult:
    """Decide integer feasibility of ``{expr >= 0 for (expr, tag) in constraints}``.

    Returns ``(True, model)`` with an integer model, or ``(False, core)``
    where ``core`` is a list of tags of a jointly infeasible subset.

    Raises:
        BudgetExceeded: when the node budget runs out (should be rare; the
            budget exists to bound pathological branching).
    """
    var_names = sorted({v for expr, _ in constraints for v, _ in expr.coeffs})
    trivially_false = [tag for expr, tag in constraints if expr.is_constant and expr.const < 0]
    if trivially_false:
        return False, [trivially_false[0]]
    real_constraints = [(expr, tag) for expr, tag in constraints if not expr.is_constant]
    if not real_constraints:
        return True, {name: 0 for name in var_names}
    box = _small_model_bound(real_constraints, len(var_names))
    search = _Search(var_names, real_constraints, box, max_nodes, deadline)
    outcome = search.solve([])
    if isinstance(outcome, dict):
        return True, outcome
    core: List[object] = []
    seen: Set[int] = set()
    for tag in outcome:
        if tag is None or isinstance(tag, _BranchTag):
            continue
        if id(tag) not in seen:
            seen.add(id(tag))
            core.append(tag)
    return False, core


def _small_model_bound(
    constraints: Sequence[Tuple[LinExpr, object]], num_vars: int
) -> int:
    biggest = 1
    for expr, _ in constraints:
        for _, coeff in expr.coeffs:
            biggest = max(biggest, abs(coeff))
        biggest = max(biggest, abs(expr.const))
    m = len(constraints)
    n = max(num_vars, 1)
    # Papadimitriou's bound; cap the exponent so the integer stays tractable
    # while remaining astronomically above anything synthesis produces.
    exponent = min(2 * m + 1, 40)
    return n * (m * biggest + 1) ** exponent


def _new_frame(bounds, branch_request):
    name, floor_v = branch_request
    return {
        "bounds": bounds,
        "name": name,
        "floor": floor_v,
        "low_tag": _BranchTag(),
        "high_tag": _BranchTag(),
        "phase": 0,
        "low_core": None,
    }


class _Search:
    def __init__(
        self,
        var_names: Sequence[str],
        constraints: Sequence[Tuple[LinExpr, object]],
        box: int,
        max_nodes: int,
        deadline: Optional[float] = None,
    ) -> None:
        self._var_names = list(var_names)
        self._constraints = list(constraints)
        self._box = box
        self._nodes_left = max_nodes
        self._deadline = deadline

    def solve(self, root_bounds: List[Tuple[str, bool, int, object]]):
        """Returns an int model dict, or a list of tags (conflict core).

        Iterative depth-first branch-and-bound.  Conflict cores of sibling
        branches are merged with their branch tags stripped, which is sound:
        if ``A ∪ {x <= f}`` and ``B ∪ {x >= f+1}`` are both infeasible then
        ``A ∪ B`` forces ``f < x < f+1``, which no integer satisfies.
        """
        # Each stack frame: (bounds, state) where state is None (not yet
        # solved), or ("split", name, floor_v, low_result) awaiting children.
        result = self._solve_leaf(root_bounds)
        if not isinstance(result, tuple):
            return result
        # Explicit DFS over pending branch decisions.
        stack: List[dict] = [
            {
                "bounds": root_bounds,
                "name": result[0],
                "floor": result[1],
                "low_tag": _BranchTag(),
                "high_tag": _BranchTag(),
                "phase": 0,
                "low_core": None,
            }
        ]
        child_result = None
        while stack:
            frame = stack[-1]
            if frame["phase"] == 0:
                frame["phase"] = 1
                branch = frame["bounds"] + [
                    (frame["name"], False, frame["floor"], frame["low_tag"])
                ]
                outcome = self._solve_leaf(branch)
                if isinstance(outcome, tuple):
                    stack.append(_new_frame(branch, outcome))
                    continue
                if isinstance(outcome, dict):
                    return outcome
                frame["low_core"] = outcome
                continue
            if frame["phase"] == 1:
                if child_result is not None:
                    if isinstance(child_result, dict):
                        return child_result
                    frame["low_core"] = child_result
                    child_result = None
                frame["phase"] = 2
                branch = frame["bounds"] + [
                    (frame["name"], True, frame["floor"] + 1, frame["high_tag"])
                ]
                outcome = self._solve_leaf(branch)
                if isinstance(outcome, tuple):
                    stack.append(_new_frame(branch, outcome))
                    continue
                if isinstance(outcome, dict):
                    return outcome
                frame["high_core"] = outcome
                # fall through to combine
            if frame["phase"] == 2 and child_result is not None:
                if isinstance(child_result, dict):
                    return child_result
                frame["high_core"] = child_result
                child_result = None
            if frame["phase"] == 2 and "high_core" in frame:
                low_core = frame["low_core"] or []
                high_core = frame["high_core"] or []
                combined = [t for t in low_core if t is not frame["low_tag"]] + [
                    t for t in high_core if t is not frame["high_tag"]
                ]
                stack.pop()
                child_result = combined
        return child_result if child_result is not None else []

    def _solve_leaf(self, branch_bounds: List[Tuple[str, bool, int, object]]):
        """Solve the LP relaxation under the given extra bounds.

        Returns an int model (dict), a conflict core (list), or a branching
        request ``(var_name, floor_value)`` (tuple) when fractional.
        """
        if self._nodes_left <= 0:
            raise BudgetExceeded("branch-and-bound node budget exhausted")
        if self._deadline is not None and self._nodes_left % 32 == 0:
            import time

            if time.monotonic() > self._deadline:
                raise BudgetExceeded("branch-and-bound deadline exceeded")
        self._nodes_left -= 1
        simplex = Simplex()
        index: Dict[str, int] = {}
        for name in self._var_names:
            index[name] = simplex.new_var()
        slack_cache: Dict[Tuple[Tuple[str, int], ...], int] = {}
        try:
            for name in self._var_names:
                var = index[name]
                simplex.assert_bound(Bound(var, True, Fraction(-self._box), None))
                simplex.assert_bound(Bound(var, False, Fraction(self._box), None))
            for expr, tag in self._constraints:
                self._assert_constraint(simplex, index, slack_cache, expr, tag)
            for name, is_lower, value, tag in branch_bounds:
                simplex.assert_bound(Bound(index[name], is_lower, Fraction(value), tag))
            simplex.check()
        except Conflict as conflict:
            return [bound.tag for bound in conflict.bounds]
        # Rational model found; branch on the most fractional variable.
        best_name = None
        best_score = Fraction(0)
        best_value = Fraction(0)
        for name in self._var_names:
            value = simplex.value(index[name])
            if value.denominator != 1:
                fractional_part = value - math.floor(value)
                score = min(fractional_part, 1 - fractional_part)
                if best_name is None or score > best_score:
                    best_name, best_score, best_value = name, score, value
        if best_name is None:
            return {
                name: int(simplex.value(index[name])) for name in self._var_names
            }
        return (best_name, math.floor(best_value))

    def _assert_constraint(
        self,
        simplex: Simplex,
        index: Dict[str, int],
        slack_cache: Dict[Tuple[Tuple[str, int], ...], int],
        expr: LinExpr,
        tag: object,
    ) -> None:
        # expr >= 0  <=>  sum(c_i x_i) >= -const.
        threshold = Fraction(-expr.const)
        if len(expr.coeffs) == 1:
            name, coeff = expr.coeffs[0]
            var = index[name]
            limit = threshold / coeff
            if coeff > 0:
                simplex.assert_bound(Bound(var, True, Fraction(math.ceil(limit)), tag))
            else:
                simplex.assert_bound(Bound(var, False, Fraction(math.floor(limit)), tag))
            return
        key = expr.coeffs
        slack = slack_cache.get(key)
        if slack is None:
            combo = {index[name]: Fraction(coeff) for name, coeff in expr.coeffs}
            slack = simplex.new_slack(combo)
            slack_cache[key] = slack
        simplex.assert_bound(Bound(slack, True, threshold, tag))
