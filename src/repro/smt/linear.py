"""Linear expressions and canonical linear atoms over the integers.

A :class:`LinExpr` is ``sum(coeff_i * var_i) + const`` with integer
coefficients.  A :class:`LinAtom` is the constraint ``LinExpr >= 0`` in a
canonical, gcd-tightened form; complementary atoms (``e >= 0`` versus
``-e - 1 >= 0``) normalise to the same atom with opposite polarity, so the
SAT abstraction sees them as one variable.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, Iterable, Mapping, Tuple

from repro.lang.ast import Kind, Term


class LinearityError(Exception):
    """Raised when a term is not linear (e.g. a product of two variables)."""


class LinExpr:
    """An immutable integer-linear expression ``sum c_i * x_i + const``."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Mapping[str, int], const: int):
        self.coeffs: Tuple[Tuple[str, int], ...] = tuple(
            sorted((v, c) for v, c in coeffs.items() if c != 0)
        )
        self.const = const

    @staticmethod
    def constant(value: int) -> "LinExpr":
        return LinExpr({}, value)

    @staticmethod
    def variable(name: str) -> "LinExpr":
        return LinExpr({name: 1}, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def __add__(self, other: "LinExpr") -> "LinExpr":
        coeffs = self.as_dict()
        for var, coeff in other.coeffs:
            coeffs[var] = coeffs.get(var, 0) + coeff
        return LinExpr(coeffs, self.const + other.const)

    def __sub__(self, other: "LinExpr") -> "LinExpr":
        return self + other.scale(-1)

    def scale(self, factor: int) -> "LinExpr":
        return LinExpr({v: c * factor for v, c in self.coeffs}, self.const * factor)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.const + sum(c * env[v] for v, c in self.coeffs)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinExpr)
            and self.coeffs == other.coeffs
            and self.const == other.const
        )

    def __hash__(self) -> int:
        return hash((self.coeffs, self.const))

    def __repr__(self) -> str:
        parts = [f"{c}*{v}" for v, c in self.coeffs]
        parts.append(str(self.const))
        return " + ".join(parts)


def term_to_linexpr(term: Term) -> LinExpr:
    """Convert an Int-sorted, ite-free term into a :class:`LinExpr`.

    Raises:
        LinearityError: if the term multiplies two non-constant parts or
            contains an ``ite``/application (those must be eliminated first).
    """
    kind = term.kind
    if kind is Kind.CONST:
        return LinExpr.constant(term.payload)  # type: ignore[arg-type]
    if kind is Kind.VAR:
        return LinExpr.variable(term.payload)  # type: ignore[arg-type]
    if kind is Kind.ADD:
        result = LinExpr.constant(0)
        for arg in term.args:
            result = result + term_to_linexpr(arg)
        return result
    if kind is Kind.SUB:
        return term_to_linexpr(term.args[0]) - term_to_linexpr(term.args[1])
    if kind is Kind.NEG:
        return term_to_linexpr(term.args[0]).scale(-1)
    if kind is Kind.MUL:
        left = term_to_linexpr(term.args[0])
        right = term_to_linexpr(term.args[1])
        if left.is_constant:
            return right.scale(left.const)
        if right.is_constant:
            return left.scale(right.const)
        raise LinearityError(f"nonlinear product: {term!r}")
    raise LinearityError(f"not an integer-linear term: {term!r}")


class LinAtom:
    """Canonical linear atom ``expr >= 0`` with gcd-tightened coefficients."""

    __slots__ = ("coeffs", "const", "_hash")

    def __init__(self, coeffs: Tuple[Tuple[str, int], ...], const: int):
        self.coeffs = coeffs
        self.const = const
        self._hash = hash((coeffs, const))

    def negate(self) -> "LinAtom":
        """The constraint ``not (expr >= 0)``, i.e. ``-expr - 1 >= 0``.

        The result is a valid constraint but deliberately *not* re-canonicalised
        (the canonical form of a negation is the original atom with flipped
        polarity, which is what the SAT layer already tracks).
        """
        return LinAtom(tuple((v, -c) for v, c in self.coeffs), -self.const - 1)

    def to_linexpr(self) -> LinExpr:
        return LinExpr(dict(self.coeffs), self.const)

    def holds(self, env: Mapping[str, int]) -> bool:
        return self.to_linexpr().evaluate(env) >= 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinAtom)
            and self.coeffs == other.coeffs
            and self.const == other.const
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"({LinExpr(dict(self.coeffs), self.const)!r} >= 0)"


def canonical_atom(expr: LinExpr) -> Tuple[LinAtom, bool]:
    """Canonicalise ``expr >= 0``.

    Returns ``(atom, positive)``; the constraint is ``atom`` when ``positive``
    and ``not atom`` otherwise.  Canonical atoms have gcd 1 over coefficients
    (tightening the constant by integer rounding) and a positive leading
    coefficient, so ``x - y >= 0`` and ``y - x - 1 >= 0`` share one atom.
    """
    coeffs = expr.coeffs
    const = expr.const
    if not coeffs:
        # A constant atom: keep as a degenerate always-true/false marker.
        return LinAtom((), 0 if const >= 0 else -1), True
    divisor = 0
    for _, coeff in coeffs:
        divisor = gcd(divisor, abs(coeff))
    if divisor > 1:
        coeffs = tuple((v, c // divisor) for v, c in coeffs)
        # Floor division (toward negative infinity) tightens `expr >= 0`.
        const = _floor_div(expr.const, divisor)
    if coeffs[0][1] > 0:
        return LinAtom(coeffs, const), True
    # Flip sign: expr >= 0  <=>  not (-expr - 1 >= 0).
    flipped = tuple((v, -c) for v, c in coeffs)
    return LinAtom(flipped, -const - 1), False


def _floor_div(a: int, b: int) -> int:
    return a // b  # Python's // already floors toward negative infinity.


def atom_constraint(atom: LinAtom, positive: bool) -> LinExpr:
    """The linear constraint (as ``expr >= 0``) asserted by a literal."""
    if positive:
        return atom.to_linexpr()
    return atom.negate().to_linexpr()


def max_abs_coefficient(exprs: Iterable[LinExpr]) -> int:
    """Largest absolute coefficient/constant, used for small-model bounds."""
    biggest = 1
    for expr in exprs:
        for _, coeff in expr.coeffs:
            biggest = max(biggest, abs(coeff))
        biggest = max(biggest, abs(expr.const))
    return biggest
