"""A from-scratch SMT solver for quantifier-free linear integer arithmetic.

This is the substrate that replaces Z3 in the original DryadSynth: a CDCL SAT
core (:mod:`repro.smt.sat`), Tseitin CNF conversion with canonical linear
atoms (:mod:`repro.smt.tseitin`, :mod:`repro.smt.linear`), an exact rational
simplex (:mod:`repro.smt.simplex`) and a branch-and-bound integer layer
(:mod:`repro.smt.branch_bound`), glued together by the lazy DPLL(T) driver in
:mod:`repro.smt.solver`.

Every query DryadSynth issues — candidate verification and fixed-height
inductive synthesis — is QF_LIA, so this substrate covers the whole paper.
"""

from repro.smt.solver import (
    Result,
    SmtSolver,
    SolverBudgetExceeded,
    Status,
    check_sat,
    get_counterexample,
    is_valid,
)

__all__ = [
    "Result",
    "SmtSolver",
    "SolverBudgetExceeded",
    "Status",
    "check_sat",
    "get_counterexample",
    "is_valid",
]
