"""Semantic SMT query memoization keyed by the ``repro-smtq/1`` fingerprint.

The synthesis loops issue many *semantically identical* SMT queries:
``SygusProblem.verify`` builds a fresh solver per candidate, the same
initial candidate reappears across heights and sessions, and replayed
corpora are full of shared incremental prefixes.  This module caches
**decided** outcomes (SAT with a model, UNSAT with its assumption core) in
one process-wide table so a duplicate query returns its recorded result
without touching DPLL(T).

**Key.**  A query's fingerprint hashes exactly the content of a
``repro-smtq/1`` capture snapshot (:mod:`repro.smt.capture`): every
asserted formula rendered with :func:`repro.lang.printer.to_sexpr`
together with its free variables' sorts, a marker for a trivially-false
assertion set, and the per-call assumptions.  Two solvers with the same
fingerprint are running the same conjunction over the same-sorted
variables, so the decision transfers.  Per-term digests are memoized on
the interned :class:`~repro.lang.ast.Term`, and :class:`SmtSolver` folds
the asserted-formula digests incrementally, so a hot incremental session
pays one short hash per solve, not a re-render of its whole history.

**Soundness.**  Only SAT/UNSAT results are stored: a budget or deadline
abort (:class:`SolverBudgetExceeded`) describes the *run*, not the query,
and propagates uncached.  SAT hits return a *copy* of the stored model
(callers mutate counterexamples in place); UNSAT hits return the stored
assumption core, whose terms are interned and therefore identical to the
caller's assumption terms.  Capture mode bypasses the memo entirely so a
recorded corpus always reflects real solves.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro import obs
from repro.lang.ast import Term
from repro.lang.printer import to_sexpr
from repro.lang.traversal import free_vars

#: Stored decisions per memo; oldest-touched entries are evicted first.
DEFAULT_CAPACITY = 4096

_term_digests: Dict[Term, bytes] = {}


def term_digest(term: Term) -> bytes:
    """The per-term fingerprint contribution (cached on the interned term).

    Hashes the term's s-expression rendering — the exact text a
    ``repro-smtq/1`` capture stores — plus its free variables with their
    sorts, because two sort-distinct queries can render identically."""
    digest = _term_digests.get(term)
    if digest is None:
        h = hashlib.sha256(to_sexpr(term).encode("utf-8"))
        for v in sorted(free_vars(term), key=lambda t: t.payload):
            h.update(f"\x00{v.payload}:{v.sort.name}".encode("utf-8"))
        digest = _term_digests[term] = h.digest()
    return digest


class _Entry:
    __slots__ = ("status", "model", "rounds", "unsat_core")

    def __init__(
        self,
        status,
        model: Optional[Dict],
        rounds: int,
        unsat_core: Tuple[Term, ...],
    ) -> None:
        self.status = status
        self.model = model
        self.rounds = rounds
        self.unsat_core = unsat_core


class QueryMemo:
    """An LRU table of decided SMT query outcomes.

    Hit/miss totals are kept locally (for reports) and mirrored into the
    ambient metrics registry as ``smt.memo_hits`` / ``smt.memo_misses``
    (:mod:`repro.obs`; free when telemetry is disabled)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[bytes, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: bytes):
        """The cached :class:`~repro.smt.solver.Result`, or None.

        A hit returns a *fresh* Result with a copied model — callers
        mutate counterexample models in place and must never reach the
        stored copy."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            obs.metrics().counter("smt.memo_misses").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        obs.metrics().counter("smt.memo_hits").inc()
        from repro.smt.solver import Result

        model = dict(entry.model) if entry.model is not None else None
        return Result(entry.status, model, entry.rounds, entry.unsat_core)

    def store(self, key: bytes, result) -> None:
        """Record a decided result; undecided outcomes are never stored."""
        from repro.smt.solver import Status

        if result.status not in (Status.SAT, Status.UNSAT):
            return
        model = dict(result.model) if result.model is not None else None
        self._entries[key] = _Entry(
            result.status, model, result.rounds, result.unsat_core
        )
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def reset(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }


#: The process-wide default memo every :class:`SmtSolver` shares unless
#: constructed with an explicit ``memo=`` (``None`` disables memoization —
#: replay tooling does this to force true re-execution).
_default = QueryMemo()


def default_memo() -> QueryMemo:
    return _default


def reset_default_memo() -> None:
    """Clear the process-wide memo (tests; isolation between corpora)."""
    _default.reset()
