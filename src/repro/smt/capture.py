"""SMT query capture and deterministic replay (``--smt-corpus``).

Capturing serializes every :meth:`SmtSolver.solve` call — the active
assertion set, the per-call assumptions, the recorded outcome and (for SAT)
the model — into a line-oriented corpus that replays *without the synthesis
loop*: SMT-core performance work can be benchmarked against real query
distributions in isolation, and any behavioural divergence (a status flip, a
model that stops satisfying its query) is caught exactly.

Corpus layout: one ``<problem>.smtq.jsonl`` file per captured problem inside
the corpus directory.  Line 1 is a header ``{"format": "repro-smtq/1", ...}``;
each further line is one query entry::

    {"seq": 7, "status": "sat", "wall": 0.0013,
     "budget": {"max_rounds": 100000, "lia_node_budget": 20000},
     "q": {"vars": {"x": "Int", ...}, "assert": ["(>= x 0)", ...],
           "assume": ["b0"]},
     "model": {"x": 3}, "model_sig": "9f8e..."}

Formulas are stored as SyGuS/SMT-LIB s-expressions (via
:func:`repro.lang.printer.to_sexpr`) and parsed back through the SyGuS term
parser, so the corpus is printable, diffable and solver-independent.

Replay semantics: each entry gets a **fresh** solver with the recorded
budgets.  The captured status must reproduce exactly, except for aborted
captures (``deadline-exceeded`` / ``budget-exceeded``): a wall-clock or
warmed-solver budget abort is an artifact of the capturing run, so those
entries are counted as skipped rather than replayed.  SAT models are checked
*semantically* — the replayed model must satisfy the parsed query — not
syntactically, because a fresh solver legitimately returns a different model
than the incremental session the query was captured from.  The stored
``model_sig`` is an integrity hash of the stored model; a mismatch means the
corpus file was altered.

Capture activation is ambient (like :mod:`repro.obs`): ``with
capturing(dir, problem): ...`` installs a writer that
:meth:`SmtSolver.solve` consults; the disabled cost is one global read.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.printer import to_sexpr
from repro.lang.traversal import free_vars

FORMAT = "repro-smtq/1"

#: Divergence kinds, in report-precedence order (worst first).
KIND_CORRUPT = "corrupt"
KIND_STATUS = "status"
KIND_MODEL = "model"

#: Captured statuses that describe an *abort*, not a decision.  A
#: ``deadline-exceeded`` capture means the run's wall-clock deadline fired
#: mid-query; a ``budget-exceeded`` capture means the round/node budget ran
#: out on a solver warmed by every earlier query of the session.  Neither is
#: reproducible on a fresh solver (no deadline; no learned state), so replay
#: counts these entries as skipped instead of comparing their status.
ABORTED_STATUSES = frozenset({"budget-exceeded", "deadline-exceeded"})


class CorpusError(Exception):
    """A corpus file is structurally damaged (not merely divergent)."""


def _sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name) or "queries"


def model_signature(model: Dict) -> str:
    """Integrity hash of a stored model: sorted ``name=value`` lines."""
    lines = "\n".join(f"{k}={model[k]}" for k in sorted(model))
    return hashlib.sha256(lines.encode("utf-8")).hexdigest()[:16]


class QueryCapture:
    """Appends one entry per ``solve()`` call to ``<dir>/<problem>.smtq.jsonl``."""

    def __init__(self, directory: str, problem: str = "queries") -> None:
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, f"{_sanitize(problem)}.smtq.jsonl")
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        self._handle = open(self.path, "a")
        if fresh:
            self._handle.write(
                json.dumps({"format": FORMAT, "problem": problem}) + "\n"
            )
            self._handle.flush()
        self.seq = 0
        # An incremental solver re-solves with a growing assertion list;
        # per-term memos keep successive snapshots from re-rendering (and
        # re-walking) the shared prefix on every query.  Keyed by object
        # identity, which is exactly the sharing the solver exhibits.
        self._sexpr_memo: Dict[int, str] = {}
        self._vars_memo: Dict[int, Dict[str, str]] = {}

    def _render(self, term) -> str:
        text = self._sexpr_memo.get(id(term))
        if text is None:
            text = self._sexpr_memo[id(term)] = to_sexpr(term)
        return text

    def _variables(self, term) -> Dict[str, str]:
        found = self._vars_memo.get(id(term))
        if found is None:
            found = self._vars_memo[id(term)] = {
                v.payload: v.sort.name for v in free_vars(term)
            }
        return found

    def snapshot(self, solver, assumptions) -> Dict:
        """Serialize the solver's active query *before* it runs.

        The active query is ``AND(asserted) ∧ AND(assumptions)``: open-scope
        assertions live in ``encoder.asserted`` and their activation guards
        are always assumed by ``solve``, so the plain conjunction is the
        correct replay semantics.  ``add(false)`` outside a scope never
        reaches the assertion list (the solver short-circuits on a flag), so
        it is re-materialized here as a literal ``"false"`` — without it an
        UNSAT capture would replay as an empty SAT query.
        """
        asserted = list(solver._encoder.asserted)
        variables: Dict[str, str] = {}
        for term in list(asserted) + list(assumptions):
            variables.update(self._variables(term))
        rendered = [self._render(term) for term in asserted]
        if solver._trivially_false:
            rendered.append("false")
        return {
            "vars": dict(sorted(variables.items())),
            "assert": rendered,
            "assume": [self._render(term) for term in assumptions],
        }

    def record(
        self,
        query: Dict,
        status: str,
        model: Optional[Dict],
        wall: float,
        budget: Dict,
    ) -> None:
        self.seq += 1
        entry: Dict = {
            "seq": self.seq,
            "status": status,
            "wall": round(wall, 6),
            "budget": budget,
            "q": query,
        }
        if model is not None:
            # Restrict to the query's free variables: encoder-internal names
            # are not replayable and carry no information about the query.
            visible = {
                k: (int(v) if not isinstance(v, bool) else bool(v))
                for k, v in model.items()
                if k in query["vars"]
            }
            entry["model"] = visible
            entry["model_sig"] = model_signature(visible)
        self._handle.write(json.dumps(entry) + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


_active: Optional[QueryCapture] = None


def active() -> Optional[QueryCapture]:
    """The ambient capture writer, or None (the common, zero-cost case)."""
    return _active


@contextmanager
def capturing(directory: str, problem: str = "queries"):
    """Capture every ``solve()`` in the block into ``directory``."""
    global _active
    previous = _active
    writer = QueryCapture(directory, problem)
    _active = writer
    try:
        yield writer
    finally:
        _active = previous
        writer.close()


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


@dataclass
class Divergence:
    """One replay mismatch."""

    path: str
    seq: object
    kind: str  # corrupt | status | model
    detail: str


@dataclass
class ReplayReport:
    """Aggregate outcome of replaying one corpus."""

    entries: int = 0
    files: int = 0
    skipped: int = 0  # aborted captures (see ABORTED_STATUSES), not replayed
    divergences: List[Divergence] = field(default_factory=list)
    captured_walls: List[float] = field(default_factory=list)
    replayed_walls: List[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def kinds(self) -> List[str]:
        return sorted({d.kind for d in self.divergences})


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def timing_percentiles(values: List[float]) -> Dict[str, float]:
    return {
        "p50": round(_percentile(values, 0.50), 6),
        "p90": round(_percentile(values, 0.90), 6),
        "p99": round(_percentile(values, 0.99), 6),
    }


def _parse_query(query: Dict) -> Tuple[List, Dict]:
    """Parse an entry's query back into Terms; returns (terms, scope)."""
    from repro.lang.builders import var
    from repro.lang.sexpr import parse_sexpr
    from repro.lang.sorts import BOOL, INT
    from repro.sygus.parser import _Context

    sorts = {"Int": INT, "Bool": BOOL}
    scope = {}
    for name, sort_name in query.get("vars", {}).items():
        if sort_name not in sorts:
            raise CorpusError(f"unknown sort {sort_name!r}")
        scope[name] = var(name, sorts[sort_name])
    ctx = _Context()
    terms = []
    for text in list(query.get("assert", ())) + list(query.get("assume", ())):
        terms.append(ctx.parse_term(parse_sexpr(text), scope))
    return terms, scope


def _model_satisfies(terms: List, scope: Dict, model: Dict) -> Tuple[bool, str]:
    """Semantic model check: every query conjunct evaluates to true."""
    from repro.lang.evaluator import EvaluationError, evaluate
    from repro.lang.sorts import BOOL

    env = {}
    for name, var_term in scope.items():
        default = False if var_term.sort is BOOL else 0
        env[name] = model.get(name, default)
    for term in terms:
        try:
            value = evaluate(term, env)
        except EvaluationError as exc:
            return False, f"evaluation failed: {exc}"
        if not bool(value):
            return False, f"conjunct not satisfied: {to_sexpr(term)[:120]}"
    return True, ""


def read_corpus_file(path: str) -> Tuple[Dict, List[Tuple[int, Dict]]]:
    """Load one ``.smtq.jsonl`` file; returns ``(header, [(lineno, entry)])``.

    Raises :class:`CorpusError` on an unreadable line or a missing/foreign
    header — replay must never silently skip damaged data.
    """
    header: Dict = {}
    entries: List[Tuple[int, Dict]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorpusError(f"{path}:{lineno}: unreadable entry: {exc}")
            if not isinstance(record, dict):
                raise CorpusError(f"{path}:{lineno}: entry is not an object")
            if lineno == 1:
                if record.get("format") != FORMAT:
                    raise CorpusError(
                        f"{path}: not a {FORMAT} corpus "
                        f"(header format={record.get('format')!r})"
                    )
                header = record
                continue
            entries.append((lineno, record))
    if not header:
        raise CorpusError(f"{path}: empty corpus file (no header)")
    return header, entries


def corpus_files(target: str) -> List[str]:
    """The corpus files under ``target`` (a directory or one file)."""
    if os.path.isfile(target):
        return [target]
    if os.path.isdir(target):
        return sorted(
            os.path.join(target, name)
            for name in os.listdir(target)
            if name.endswith(".smtq.jsonl")
        )
    return []


def replay_entry(
    path: str,
    lineno: int,
    entry: Dict,
    report: ReplayReport,
    memo=None,
) -> None:
    """Replay one entry on a fresh solver, appending divergences to ``report``.

    ``memo`` (a :class:`repro.smt.memo.QueryMemo`) is shared across the
    replay's fresh solvers; ``None`` — the default, and what ``smt-replay``
    uses — forces true re-execution of every query.  ``smt-bench`` passes a
    shared memo to measure the memoized solve path: duplicate decided
    queries answer from cache, and the divergence checks still apply to the
    answers the caller would have observed.
    """
    from repro.smt.solver import SmtSolver, SolverBudgetExceeded

    seq = entry.get("seq", f"line {lineno}")

    def diverge(kind: str, detail: str) -> None:
        report.divergences.append(Divergence(path, seq, kind, detail))

    status = entry.get("status")
    query = entry.get("q")
    if not isinstance(query, dict) or not isinstance(status, str):
        diverge(KIND_CORRUPT, "missing q/status fields")
        return
    if status in ABORTED_STATUSES:
        report.skipped += 1
        return
    model = entry.get("model")
    if model is not None:
        if entry.get("model_sig") != model_signature(model):
            diverge(
                KIND_MODEL,
                "stored model does not match its model_sig "
                "(corpus altered after capture)",
            )
            return
    try:
        terms, scope = _parse_query(query)
    except Exception as exc:  # parse/sort errors are corruption, not divergence
        diverge(KIND_CORRUPT, f"query does not parse: {exc}")
        return
    budget = entry.get("budget", {})
    solver = SmtSolver(
        max_rounds=int(budget.get("max_rounds", 100000)),
        lia_node_budget=int(budget.get("lia_node_budget", 20000)),
        memo=memo,
    )
    assume_count = len(query.get("assume", ()))
    asserted = terms[: len(terms) - assume_count] if assume_count else terms
    assumptions = terms[len(terms) - assume_count:] if assume_count else []
    start = time.monotonic()
    try:
        for term in asserted:
            solver.add(term)
        result = solver.solve(assumptions=assumptions)
        observed = result.status.value
        observed_model = result.model
    except SolverBudgetExceeded:
        observed = "budget-exceeded"
        observed_model = None
    replay_wall = time.monotonic() - start
    report.captured_walls.append(float(entry.get("wall", 0.0)))
    report.replayed_walls.append(replay_wall)
    if observed != status:
        diverge(KIND_STATUS, f"captured {status}, replayed {observed}")
        return
    if observed == "sat" and observed_model is not None:
        ok, detail = _model_satisfies(terms, scope, observed_model)
        if not ok:
            diverge(KIND_MODEL, f"replayed model does not satisfy query: {detail}")


def replay_corpus(target: str, memo=None) -> ReplayReport:
    """Replay every entry in a corpus directory (or single file)."""
    report = ReplayReport()
    files = corpus_files(target)
    if not files:
        raise CorpusError(f"no .smtq.jsonl corpus files under {target!r}")
    for path in files:
        try:
            _, entries = read_corpus_file(path)
        except CorpusError as exc:
            report.files += 1
            report.divergences.append(Divergence(path, "-", KIND_CORRUPT, str(exc)))
            continue
        report.files += 1
        for lineno, entry in entries:
            report.entries += 1
            replay_entry(path, lineno, entry, report, memo=memo)
    return report


def render_report(report: ReplayReport) -> str:
    """Human-readable replay report."""
    lines = [
        f"smt-replay: {report.entries} queries across {report.files} file(s)",
        "  captured wall  "
        + "  ".join(
            f"{k}={v:.6f}s" for k, v in timing_percentiles(report.captured_walls).items()
        ),
        "  replayed wall  "
        + "  ".join(
            f"{k}={v:.6f}s" for k, v in timing_percentiles(report.replayed_walls).items()
        ),
    ]
    if report.skipped:
        lines.append(
            f"  skipped {report.skipped} aborted capture(s) "
            "(deadline/budget aborts are not reproducible on a fresh solver)"
        )
    if report.ok:
        lines.append("  zero divergences: every status and model reproduced")
    else:
        lines.append(f"  DIVERGENCES: {len(report.divergences)}")
        for div in report.divergences[:50]:
            lines.append(
                f"    [{div.kind}] {os.path.basename(div.path)} "
                f"seq={div.seq}: {div.detail}"
            )
        if len(report.divergences) > 50:
            lines.append(f"    ... and {len(report.divergences) - 50} more")
    return "\n".join(lines)
