"""Implicant extraction from a boolean model.

Given a SAT model of a formula's boolean skeleton, compute a *small* set of
theory atoms (with polarities) that already forces the formula true.  Only
those atoms need to be checked for integer feasibility, and — on theory
conflict — the blocking lemma built from them is far more general than one
built from the full assignment.  This is the standard "don't send the whole
boolean model to the theory solver" optimisation of lazy SMT.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.lang.ast import Kind, Term
from repro.smt.linear import LinAtom
from repro.smt.tseitin import CnfEncoder

_COMPARISON_KINDS = (Kind.GE, Kind.GT, Kind.LE, Kind.LT)


class ImplicantExtractor:
    """Evaluates a prepared formula under a SAT model and collects atoms."""

    def __init__(self, encoder: CnfEncoder, sat_model: Dict[int, bool]):
        self._encoder = encoder
        self._model = sat_model
        self._truth_cache: Dict[Term, bool] = {}
        #: atom -> required truth value
        self.needed: Dict[LinAtom, bool] = {}

    def truth(self, term: Term) -> bool:
        """Truth value of a subformula under the boolean model."""
        hit = self._truth_cache.get(term)
        if hit is not None:
            return hit
        result = self._truth_uncached(term)
        self._truth_cache[term] = result
        return result

    def _truth_uncached(self, term: Term) -> bool:
        kind = term.kind
        if kind is Kind.CONST:
            return bool(term.payload)
        if kind is Kind.VAR:
            var = self._encoder.bool_vars[term.payload]  # type: ignore[index]
            return self._model[var]
        if kind in _COMPARISON_KINDS or (
            kind is Kind.EQ and term.args[0].sort.name == "Int"
        ):
            atom, positive, trivial = self._encoder.comparison_info[term]
            if atom is None:
                return bool(trivial)
            return self._model[self._encoder.atom_vars[atom]] == positive
        if kind is Kind.NOT:
            return not self.truth(term.args[0])
        if kind is Kind.AND:
            return all(self.truth(a) for a in term.args)
        if kind is Kind.OR:
            return any(self.truth(a) for a in term.args)
        if kind is Kind.IMPLIES:
            return (not self.truth(term.args[0])) or self.truth(term.args[1])
        if kind is Kind.EQ:
            return self.truth(term.args[0]) == self.truth(term.args[1])
        if kind is Kind.ITE:
            branch = term.args[1] if self.truth(term.args[0]) else term.args[2]
            return self.truth(branch)
        raise ValueError(f"cannot evaluate kind {kind}")

    def collect(self, term: Term, desired: bool) -> None:
        """Record atoms forcing ``term`` to evaluate to ``desired``."""
        kind = term.kind
        if kind is Kind.CONST:
            return
        if kind is Kind.VAR:
            return  # boolean variables do not constrain the theory
        if kind in _COMPARISON_KINDS:
            atom, positive, trivial = self._encoder.comparison_info[term]
            if atom is None:
                return
            self.needed[atom] = positive == desired
            return
        if kind is Kind.NOT:
            self.collect(term.args[0], not desired)
            return
        if kind is Kind.AND:
            if desired:
                for a in term.args:
                    self.collect(a, True)
            else:
                for a in term.args:
                    if not self.truth(a):
                        self.collect(a, False)
                        return
                raise AssertionError("false AND without a false child")
            return
        if kind is Kind.OR:
            if desired:
                for a in term.args:
                    if self.truth(a):
                        self.collect(a, True)
                        return
                raise AssertionError("true OR without a true child")
            for a in term.args:
                self.collect(a, False)
            return
        if kind is Kind.IMPLIES:
            ante, cons = term.args
            if desired:
                if not self.truth(ante):
                    self.collect(ante, False)
                else:
                    self.collect(cons, True)
            else:
                self.collect(ante, True)
                self.collect(cons, False)
            return
        if kind is Kind.EQ:
            # Boolean equivalence: pin both sides at their actual values.
            self.collect(term.args[0], self.truth(term.args[0]))
            self.collect(term.args[1], self.truth(term.args[1]))
            return
        if kind is Kind.ITE:
            cond, then, els = term.args
            cond_value = self.truth(cond)
            self.collect(cond, cond_value)
            self.collect(then if cond_value else els, desired)
            return
        raise ValueError(f"cannot collect from kind {kind}")


def extract_implicant(
    encoder: CnfEncoder,
    sat_model: Dict[int, bool],
    extra: Sequence[Term] = (),
) -> Dict[LinAtom, bool]:
    """Atoms (with polarity) sufficient to satisfy everything asserted.

    ``extra`` holds additional prepared formulas the model must satisfy —
    the assumptions of the current ``solve`` call, whose atoms must reach
    the theory solver just like those of the permanent assertions.
    """
    extractor = ImplicantExtractor(encoder, sat_model)
    for formula in encoder.asserted:
        assert extractor.truth(formula), "SAT model does not satisfy the skeleton"
        extractor.collect(formula, True)
    for formula in extra:
        assert extractor.truth(formula), "SAT model does not satisfy an assumption"
        extractor.collect(formula, True)
    return extractor.needed
