"""Benchmark regression history: longitudinal quick-bench records + gating.

The wall-time and solved-set wins this repo measures PR by PR (pool speedup,
DPLL(T) round reductions) are only safe if something *machine-checks* them
afterwards.  This module keeps a committed JSONL store
(``BENCH_history.jsonl``) of quick-bench runs — solved set, wall clock,
cumulative SMT rounds, per-problem times — and compares a fresh run against
the *trailing baseline* (the last ``window`` comparable records), the same
longitudinal solved/time methodology SyGuS-Comp uses across competition
years.  ``dryadsynth bench-compare`` wraps it as the CI gate: it fails on

- **solved-set shrink** — any problem solved in *every* trailing record
  (the intersection, so one historically flaky solve cannot block) that the
  current run does not solve;
- **median wall growth** — the median per-problem wall time over the
  commonly-solved set growing more than ``max_wall_growth`` (default 15%)
  over the trailing baseline's medians.

Records gate only against records with the same solver and budget —
comparing a 2 s run against a 10 s history would be noise, not a baseline.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

HISTORY_FORMAT = "repro-bench-history/1"

#: Trailing records forming the baseline.
DEFAULT_WINDOW = 5
#: Allowed growth of the median per-problem wall time (fraction).
DEFAULT_MAX_WALL_GROWTH = 0.15
#: Below this baseline median (seconds) the wall gate is skipped: timer
#: jitter dominates and a "regression" would be noise.
MIN_MEDIAN_WALL = 0.01
#: Allowed growth of serve-mode p99 submit-to-result latency (fraction).
#: Looser than the wall gate: queueing latency under concurrent clients is
#: inherently noisier than single-problem solver wall time.
DEFAULT_MAX_LATENCY_GROWTH = 0.50
#: Below this baseline p99 (seconds) the latency gate is skipped.
MIN_LATENCY = 0.05


def record_from_quick_bench(
    result: Dict, context: Optional[Dict] = None
) -> Dict:
    """Build one history record from a quick-bench ``{"records", "summary"}``."""
    records = result["records"]
    summary = result["summary"]
    per_problem = {
        r["benchmark"]: {
            "solved": bool(r["solved"]),
            "wall": round(float(r["wall_seconds"]), 4),
            "smt_rounds": int(r.get("smt_rounds", 0)),
        }
        for r in records
    }
    record = {
        "format": HISTORY_FORMAT,
        "recorded_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "solver": summary["solver"],
        "timeout_seconds": summary["timeout_seconds"],
        "problems": summary["problems"],
        "solved": sorted(
            name for name, entry in per_problem.items() if entry["solved"]
        ),
        "wall_seconds": summary["wall_seconds"],
        "smt_rounds": int(summary.get("stats", {}).get("smt_rounds", 0)),
        "per_problem": per_problem,
    }
    if context:
        record["context"] = dict(context)
    return record


def record_from_loadgen(
    report: Dict,
    solver: str,
    timeout: float,
    context: Optional[Dict] = None,
) -> Dict:
    """Build a serve-mode history record from a loadgen report.

    Serve-mode records carry ``"mode": "serve"`` and a ``serve_latency``
    block; :func:`compare` only gates them against other serve-mode records
    (and batch records only against batch records), so daemon queueing
    latency never pollutes the quick-bench wall baseline or vice versa.
    """
    record = {
        "format": HISTORY_FORMAT,
        "mode": "serve",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "solver": solver,
        "timeout_seconds": timeout,
        "problems": report["requests"],
        "solved": sorted(report.get("solved", [])),
        "wall_seconds": report["wall_seconds"],
        "serve_latency": {
            "p50": report["latency"]["p50"],
            "p90": report["latency"].get("p90"),
            "p99": report["latency"]["p99"],
            "clients": report["clients"],
            "requests": report["requests"],
            "cache_hits": report.get("cache_hits", 0),
            "shed": report.get("shed", 0),
        },
    }
    if context:
        record["context"] = dict(context)
    return record


def record_from_smt_bench(
    report: Dict, context: Optional[Dict] = None
) -> Dict:
    """Build a solver-only history record from an ``smt-bench`` report.

    These records carry ``"mode": "smt-bench"`` and gate only against each
    other: the workload is the committed ``repro-smtq/1`` corpus replayed
    straight into :class:`~repro.smt.solver.SmtSolver`, with no synthesis
    loop, no enumeration and no subprocess pool in the measurement.  The
    gate is therefore the tightest wall signal the history has — a pure
    SMT-substrate regression detector.
    """
    record = {
        "format": HISTORY_FORMAT,
        "mode": "smt-bench",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "solver": "smt-core",
        "timeout_seconds": 0.0,
        "problems": report["queries"],
        "solved": [],
        "wall_seconds": round(float(report["replayed_wall"]), 4),
        "smt_bench": {
            "queries": report["queries"],
            "files": report["files"],
            "skipped": report.get("skipped", 0),
            "divergences": report.get("divergences", 0),
            "replayed_wall": round(float(report["replayed_wall"]), 4),
            "latency": {
                "p50": report["latency"]["p50"],
                "p90": report["latency"].get("p90"),
                "p99": report["latency"]["p99"],
            },
            "memo": {
                "hits": report.get("memo", {}).get("hits", 0),
                "misses": report.get("memo", {}).get("misses", 0),
            },
        },
    }
    if context:
        record["context"] = dict(context)
    return record


def load_history(path: str) -> List[Dict]:
    """Read a history JSONL store tolerantly.

    Same contract as :func:`repro.obs.export.read_jsonl_tolerant` (which
    does the reading): a truncated trailing line — even one torn inside a
    multi-byte UTF-8 character — is dropped as the residue of an
    interrupted append; a corrupt interior line raises.  A missing file is
    an empty history.
    """
    from repro.obs.export import read_jsonl_tolerant

    try:
        records = read_jsonl_tolerant(path)
    except OSError:
        return []
    return [r for r in records if r.get("format") == HISTORY_FORMAT]


def append_history(path: str, record: Dict) -> None:
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


@dataclass
class Comparison:
    """Outcome of gating one record against the trailing baseline."""

    ok: bool = True
    regressions: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    baseline_runs: int = 0
    missing: List[str] = field(default_factory=list)
    new_solves: List[str] = field(default_factory=list)
    median_wall_baseline: Optional[float] = None
    median_wall_current: Optional[float] = None
    wall_growth: Optional[float] = None
    latency_p99_baseline: Optional[float] = None
    latency_p99_current: Optional[float] = None
    latency_growth: Optional[float] = None
    smt_wall_baseline: Optional[float] = None
    smt_wall_current: Optional[float] = None
    smt_wall_growth: Optional[float] = None
    #: Per-problem wall growers vs the trailing baseline medians, largest
    #: absolute growth first: ``(problem, baseline_wall, current_wall)``.
    #: Reported even on PASS so passing-but-drifting runs stay visible.
    top_growers: List[tuple] = field(default_factory=list)

    def render(self) -> str:
        lines = []
        verdict = "PASS" if self.ok else "REGRESSION"
        lines.append(f"bench-compare: {verdict} "
                     f"(baseline: trailing {self.baseline_runs} run(s))")
        for regression in self.regressions:
            lines.append(f"  REGRESSION: {regression}")
        if self.median_wall_baseline is not None:
            growth = (
                f"{self.wall_growth * 100:+.1f}%"
                if self.wall_growth is not None
                else "n/a"
            )
            lines.append(
                f"  median per-problem wall: "
                f"{self.median_wall_current:.4f}s vs baseline "
                f"{self.median_wall_baseline:.4f}s ({growth})"
            )
        if self.latency_p99_baseline is not None:
            growth = (
                f"{self.latency_growth * 100:+.1f}%"
                if self.latency_growth is not None
                else "n/a"
            )
            lines.append(
                f"  p99 submit-to-result latency: "
                f"{self.latency_p99_current:.4f}s vs baseline "
                f"{self.latency_p99_baseline:.4f}s ({growth})"
            )
        if self.smt_wall_baseline is not None:
            growth = (
                f"{self.smt_wall_growth * 100:+.1f}%"
                if self.smt_wall_growth is not None
                else "n/a"
            )
            lines.append(
                f"  corpus replay wall: {self.smt_wall_current:.4f}s vs "
                f"baseline {self.smt_wall_baseline:.4f}s ({growth})"
            )
        if self.top_growers:
            growers = "; ".join(
                f"{name} {current - baseline:+.3f}s "
                f"({baseline:.3f}s -> {current:.3f}s)"
                for name, baseline, current in self.top_growers
            )
            lines.append(f"  per-problem wall growth (top 3): {growers}")
        if self.new_solves:
            lines.append(
                f"  newly solved vs baseline: {', '.join(self.new_solves)}"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def compare(
    record: Dict,
    history: List[Dict],
    window: int = DEFAULT_WINDOW,
    max_wall_growth: float = DEFAULT_MAX_WALL_GROWTH,
    min_median_wall: float = MIN_MEDIAN_WALL,
    max_latency_growth: float = DEFAULT_MAX_LATENCY_GROWTH,
    min_latency: float = MIN_LATENCY,
) -> Comparison:
    """Gate ``record`` against the trailing baseline drawn from ``history``."""
    result = Comparison()
    comparable = [
        h for h in history
        if h.get("solver") == record.get("solver")
        and h.get("timeout_seconds") == record.get("timeout_seconds")
        and h.get("mode") == record.get("mode")
    ]
    skipped = len(history) - len(comparable)
    if skipped:
        result.notes.append(
            f"{skipped} history record(s) with a different solver/budget "
            "were excluded from the baseline"
        )
    trailing = comparable[-max(1, window):]
    result.baseline_runs = len(trailing)
    if not trailing:
        result.notes.append("no comparable history - nothing to gate against")
        return result

    # -- Solved-set gate -------------------------------------------------------
    baseline_solved = set(trailing[0].get("solved", []))
    for entry in trailing[1:]:
        baseline_solved &= set(entry.get("solved", []))
    current_solved = set(record.get("solved", []))
    result.missing = sorted(baseline_solved - current_solved)
    result.new_solves = sorted(current_solved - baseline_solved)
    if result.missing:
        result.regressions.append(
            f"solved-set shrink: {len(result.missing)} problem(s) solved in "
            f"every trailing run are now unsolved: "
            f"{', '.join(result.missing[:10])}"
            f"{' ...' if len(result.missing) > 10 else ''}"
        )

    # -- Median wall gate ------------------------------------------------------
    common = sorted(baseline_solved & current_solved)
    baseline_walls: List[float] = []
    current_walls: List[float] = []
    per_problem = record.get("per_problem", {})
    growers: List[tuple] = []
    for name in common:
        samples = [
            entry["per_problem"][name]["wall"]
            for entry in trailing
            if name in entry.get("per_problem", {})
        ]
        if not samples or name not in per_problem:
            continue
        baseline_walls.append(statistics.median(samples))
        current_walls.append(per_problem[name]["wall"])
        if current_walls[-1] > baseline_walls[-1]:
            growers.append((name, baseline_walls[-1], current_walls[-1]))
    growers.sort(key=lambda g: -(g[2] - g[1]))
    result.top_growers = growers[:3]
    if baseline_walls:
        result.median_wall_baseline = statistics.median(baseline_walls)
        result.median_wall_current = statistics.median(current_walls)
        if result.median_wall_baseline >= min_median_wall:
            result.wall_growth = (
                result.median_wall_current - result.median_wall_baseline
            ) / result.median_wall_baseline
            if result.wall_growth > max_wall_growth:
                result.regressions.append(
                    f"median wall growth "
                    f"{result.wall_growth * 100:.1f}% exceeds the "
                    f"{max_wall_growth * 100:.0f}% budget"
                )
        else:
            result.notes.append(
                "baseline median below the noise floor - wall gate skipped"
            )

    # -- Serve-mode latency gate -----------------------------------------------
    current_latency = record.get("serve_latency")
    if current_latency and current_latency.get("p99") is not None:
        baseline_p99s = [
            entry["serve_latency"]["p99"]
            for entry in trailing
            if entry.get("serve_latency", {}).get("p99") is not None
        ]
        if baseline_p99s:
            result.latency_p99_baseline = statistics.median(baseline_p99s)
            result.latency_p99_current = float(current_latency["p99"])
            if result.latency_p99_baseline >= min_latency:
                result.latency_growth = (
                    result.latency_p99_current - result.latency_p99_baseline
                ) / result.latency_p99_baseline
                if result.latency_growth > max_latency_growth:
                    result.regressions.append(
                        f"p99 submit-to-result latency growth "
                        f"{result.latency_growth * 100:.1f}% exceeds the "
                        f"{max_latency_growth * 100:.0f}% budget"
                    )
            else:
                result.notes.append(
                    "baseline p99 latency below the noise floor - "
                    "latency gate skipped"
                )
    # -- smt-bench gate --------------------------------------------------------
    current_smt = record.get("smt_bench")
    if current_smt is not None:
        if int(current_smt.get("divergences", 0)):
            result.regressions.append(
                f"corpus replay diverged on "
                f"{current_smt['divergences']} quer(y/ies) - the solver no "
                "longer reproduces recorded statuses/models"
            )
        baseline_replay = [
            float(entry["smt_bench"]["replayed_wall"])
            for entry in trailing
            if entry.get("smt_bench", {}).get("replayed_wall") is not None
            # Replay wall is only comparable at equal workload size.
            and entry["smt_bench"].get("queries") == current_smt.get("queries")
        ]
        mismatched = sum(
            1 for entry in trailing
            if entry.get("smt_bench")
            and entry["smt_bench"].get("queries") != current_smt.get("queries")
        )
        if mismatched:
            result.notes.append(
                f"{mismatched} trailing smt-bench record(s) replayed a "
                "different corpus size and were excluded from the wall gate"
            )
        if baseline_replay:
            result.smt_wall_baseline = statistics.median(baseline_replay)
            result.smt_wall_current = float(current_smt["replayed_wall"])
            if result.smt_wall_baseline >= min_median_wall:
                result.smt_wall_growth = (
                    result.smt_wall_current - result.smt_wall_baseline
                ) / result.smt_wall_baseline
                if result.smt_wall_growth > max_wall_growth:
                    result.regressions.append(
                        f"corpus replay wall growth "
                        f"{result.smt_wall_growth * 100:.1f}% exceeds the "
                        f"{max_wall_growth * 100:.0f}% budget"
                    )
            else:
                result.notes.append(
                    "baseline replay wall below the noise floor - "
                    "smt-bench wall gate skipped"
                )
    result.ok = not result.regressions
    return result


def result_from_artifacts(out_dir: str) -> Dict:
    """Rebuild a quick-bench ``{"records", "summary"}`` from its artifacts.

    Lets ``bench-compare`` gate the run CI already executed (and uploaded)
    instead of running the demo subset a second time.
    """
    import os

    records: List[Dict] = []
    with open(os.path.join(out_dir, "quick_bench.jsonl")) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    with open(os.path.join(out_dir, "quick_bench_summary.json")) as handle:
        summary = json.load(handle)
    return {"records": records, "summary": summary}
