"""Aggregate run results into the paper's figures and table.

Each ``fig*``/``table1`` function consumes a list of :class:`RunResult` and
returns plain data structures (dicts/lists); ``render_*`` helpers turn them
into the ASCII tables printed by the benchmark harnesses and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import statistics
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.runner import RunResult

TRACKS = ("INV", "CLIA", "General")

#: SyGuS-Comp pseudo-logarithmic time buckets (seconds), from the paper.
TIME_BUCKETS = (1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 1800.0)

#: SyGuS-Comp pseudo-logarithmic size buckets, from Table 1's footnote.
SIZE_BUCKETS = (10, 30, 100, 300, 1000)


def bucket_time(seconds: float) -> int:
    """Index of the pseudo-log bucket a solving time falls into."""
    for index, upper in enumerate(TIME_BUCKETS):
        if seconds < upper:
            return index
    return len(TIME_BUCKETS)


def bucket_size(size: int) -> int:
    for index, upper in enumerate(SIZE_BUCKETS):
        if size < upper:
            return index
    return len(SIZE_BUCKETS)


def _by_solver(results: Iterable[RunResult]) -> Dict[str, List[RunResult]]:
    grouped: Dict[str, List[RunResult]] = defaultdict(list)
    for result in results:
        grouped[result.solver].append(result)
    return grouped


def _solvers(results: Sequence[RunResult]) -> List[str]:
    seen: List[str] = []
    for result in results:
        if result.solver not in seen:
            seen.append(result.solver)
    return seen


# ---------------------------------------------------------------------------
# Figure 10: solved benchmarks, broken down by track
# ---------------------------------------------------------------------------


def fig10_solved_by_track(results: Sequence[RunResult]) -> Dict[str, Dict[str, int]]:
    """``{solver: {track: solved count}}``."""
    table: Dict[str, Dict[str, int]] = {
        solver: {t: 0 for t in TRACKS} for solver in _solvers(results)
    }
    for result in results:
        if result.solved:
            table[result.solver][result.track] += 1
    return table


# ---------------------------------------------------------------------------
# Figure 11: benchmarks solved the fastest (pseudo-log bucket ties)
# ---------------------------------------------------------------------------


def fig11_fastest_by_track(results: Sequence[RunResult]) -> Dict[str, Dict[str, int]]:
    """``{solver: {track: fastest-solved count}}``; ties within a time
    bucket are awarded to every tied solver, per the competition criterion."""
    by_benchmark: Dict[str, List[RunResult]] = defaultdict(list)
    for result in results:
        if result.solved:
            by_benchmark[result.benchmark].append(result)
    table: Dict[str, Dict[str, int]] = {
        solver: {t: 0 for t in TRACKS} for solver in _solvers(results)
    }
    for runs in by_benchmark.values():
        best_bucket = min(bucket_time(r.time_seconds) for r in runs)
        for run in runs:
            if bucket_time(run.time_seconds) == best_bucket:
                table[run.solver][run.track] += 1
    return table


# ---------------------------------------------------------------------------
# Figure 12: total solving time versus number solved (cumulative curves)
# ---------------------------------------------------------------------------


def fig12_time_vs_solved(
    results: Sequence[RunResult], track: Optional[str] = None
) -> Dict[str, List[Tuple[int, float]]]:
    """Per solver: points ``(n solved, cumulative seconds)`` sorted by time."""
    curves: Dict[str, List[Tuple[int, float]]] = {}
    for solver, runs in _by_solver(results).items():
        if track is not None:
            runs = [r for r in runs if r.track == track]
        times = sorted(r.time_seconds for r in runs if r.solved)
        cumulative = 0.0
        points: List[Tuple[int, float]] = []
        for index, t in enumerate(times, start=1):
            cumulative += t
            points.append((index, round(cumulative, 4)))
        curves[solver] = points
    return curves


# ---------------------------------------------------------------------------
# Figure 13: per-benchmark solving time in ascending order
# ---------------------------------------------------------------------------


def fig13_times_ascending(
    results: Sequence[RunResult], track: Optional[str] = None
) -> Dict[str, List[float]]:
    series: Dict[str, List[float]] = {}
    for solver, runs in _by_solver(results).items():
        if track is not None:
            runs = [r for r in runs if r.track == track]
        series[solver] = sorted(r.time_seconds for r in runs if r.solved)
    return series


# ---------------------------------------------------------------------------
# Table 1: smallest solutions and median solution size
# ---------------------------------------------------------------------------


def table1_solution_sizes(
    results: Sequence[RunResult],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """``{track: {solver: {smallest: n, median_size: m}}}``.

    Computed over the benchmarks commonly solved by all solvers that solved
    anything in that track, with pseudo-log size buckets for "smallest" ties
    (the paper's criterion).
    """
    outcome: Dict[str, Dict[str, Dict[str, float]]] = {}
    for track in TRACKS:
        track_runs = [r for r in results if r.track == track and r.solved]
        if not track_runs:
            continue
        solvers = sorted({r.solver for r in track_runs})
        by_bench: Dict[str, Dict[str, RunResult]] = defaultdict(dict)
        for run in track_runs:
            by_bench[run.benchmark][run.solver] = run
        common = [
            bench
            for bench, runs in by_bench.items()
            if all(s in runs and runs[s].solution_size is not None for s in solvers)
        ]
        track_table: Dict[str, Dict[str, float]] = {}
        for solver in solvers:
            sizes = [by_bench[b][solver].solution_size for b in common]
            smallest = 0
            for bench in common:
                best = min(
                    bucket_size(by_bench[bench][s].solution_size) for s in solvers
                )
                if bucket_size(by_bench[bench][solver].solution_size) == best:
                    smallest += 1
            track_table[solver] = {
                "smallest": smallest,
                "median_size": statistics.median(sizes) if sizes else 0.0,
                "common": len(common),
            }
        outcome[track] = track_table
    return outcome


# ---------------------------------------------------------------------------
# Figure 14: cooperative versus plain height-based enumeration
# ---------------------------------------------------------------------------


def fig14_coop_vs_enum(
    results: Sequence[RunResult],
    coop: str = "dryadsynth",
    enum: str = "height-enum",
) -> List[Tuple[str, Optional[float], Optional[float]]]:
    """Scatter points ``(benchmark, coop time or None, enum time or None)``."""
    coop_runs = {r.benchmark: r for r in results if r.solver == coop}
    enum_runs = {r.benchmark: r for r in results if r.solver == enum}
    points = []
    for bench in sorted(set(coop_runs) | set(enum_runs)):
        c = coop_runs.get(bench)
        e = enum_runs.get(bench)
        points.append(
            (
                bench,
                c.time_seconds if c is not None and c.solved else None,
                e.time_seconds if e is not None and e.solved else None,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Figure 15: deduction-only versus cooperative (per track)
# ---------------------------------------------------------------------------


def fig15_deduction_ablation(
    results: Sequence[RunResult],
    coop: str = "dryadsynth",
    deduction: str = "deduction",
) -> Dict[str, Dict[str, int]]:
    """``{track: {"deduct": n, "coop_extra": m}}``."""
    table: Dict[str, Dict[str, int]] = {}
    for track in TRACKS:
        ded_solved = {
            r.benchmark
            for r in results
            if r.solver == deduction and r.track == track and r.solved
        }
        coop_solved = {
            r.benchmark
            for r in results
            if r.solver == coop and r.track == track and r.solved
        }
        table[track] = {
            "deduct": len(ded_solved & coop_solved),
            "coop_extra": len(coop_solved - ded_solved),
        }
    return table


# ---------------------------------------------------------------------------
# Figure 16: vanilla versus EUSolver-backed DryadSynth
# ---------------------------------------------------------------------------


def fig16_euback_comparison(
    results: Sequence[RunResult],
    vanilla: str = "dryadsynth",
    euback: str = "dryadsynth-euback",
    deduction: str = "deduction",
) -> List[Tuple[str, Optional[float], Optional[float]]]:
    """Times on benchmarks not solved by pure deduction (paper's filter)."""
    ded_solved = {r.benchmark for r in results if r.solver == deduction and r.solved}
    vanilla_runs = {r.benchmark: r for r in results if r.solver == vanilla}
    euback_runs = {r.benchmark: r for r in results if r.solver == euback}
    points = []
    for bench in sorted(set(vanilla_runs) & set(euback_runs)):
        if bench in ded_solved:
            continue
        v, e = vanilla_runs[bench], euback_runs[bench]
        points.append(
            (
                bench,
                v.time_seconds if v.solved else None,
                e.time_seconds if e.solved else None,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Unique solves (the paper's "58 benchmarks solved uniquely")
# ---------------------------------------------------------------------------


def unique_solves(results: Sequence[RunResult]) -> Dict[str, List[str]]:
    solved_by: Dict[str, set] = defaultdict(set)
    for result in results:
        if result.solved:
            solved_by[result.benchmark].add(result.solver)
    uniques: Dict[str, List[str]] = defaultdict(list)
    for bench, solvers in solved_by.items():
        if len(solvers) == 1:
            uniques[next(iter(solvers))].append(bench)
    return {solver: sorted(benches) for solver, benches in uniques.items()}


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_solved_by_track(
    table: Dict[str, Dict[str, int]], title: str
) -> str:
    headers = ["solver"] + list(TRACKS) + ["total"]
    rows = []
    for solver in sorted(table, key=lambda s: -sum(table[s].values())):
        counts = table[solver]
        rows.append(
            [solver]
            + [counts.get(t, 0) for t in TRACKS]
            + [sum(counts.values())]
        )
    return render_table(headers, rows, title)


def render_scatter(
    points: Sequence[Tuple[str, Optional[float], Optional[float]]],
    left: str,
    right: str,
    title: str,
) -> str:
    headers = ["benchmark", left, right, "winner"]
    rows = []
    for bench, lt, rt in points:
        if lt is None and rt is None:
            winner = "neither"
        elif lt is None:
            winner = right
        elif rt is None:
            winner = left
        else:
            winner = left if lt <= rt else right
        rows.append(
            [
                bench,
                f"{lt:.2f}" if lt is not None else "-",
                f"{rt:.2f}" if rt is not None else "-",
                winner,
            ]
        )
    return render_table(headers, rows, title)
