"""Persistent per-node run analytics (``dryadsynth history``).

The forensics layer (:mod:`repro.obs.forensics`) records what the search
did *inside one run*, keyed by the process-stable subproblem node id.  This
module folds each run's span stream + forensics events into one compact
record per run — per-``stable_node_id``: division strategy chosen,
deduction rules fired/failed, heights tried, self wall, SMT rounds and
outcome — and appends it to a committed JSONL store alongside
``BENCH_history.jsonl``.

That store is the data foundation for history-driven adaptive scheduling
(ROADMAP item 5): across enough runs it answers "for nodes of this shape,
which strategies ever fire?" without re-parsing span dumps.  The
``dryadsynth history`` CLI queries it: per-run rows plus a cross-run
aggregate for one node, or a store-wide summary of the hottest nodes.

Records are append-only JSONL with the same torn-tail tolerance as every
other store (:func:`repro.obs.export.read_jsonl_tolerant`).
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.explain import ExplainReport, build_explain
from repro.obs.spans import ObsEvent, Span

ANALYTICS_FORMAT = "repro-node-analytics/1"

#: Default store path, next to ``BENCH_history.jsonl``.
DEFAULT_STORE = "BENCH_analytics.jsonl"


def node_entries(report: ExplainReport) -> Dict[str, Dict]:
    """Fold an explain report into compact per-node analytics entries."""
    entries: Dict[str, Dict] = {}
    for node_id, node in report.nodes.items():
        entry = {
            "fun": node.fun,
            "depth": node.depth,
            "outcome": node.solved_how or "unsolved",
            "self_wall": round(node.self_wall, 6),
            "smt_rounds": node.smt_rounds,
            "smt_calls": node.smt_calls,
            "cegis_iters": node.cegis_iters,
        }
        strategy = node.last_strategy or node.strategy
        if strategy:
            entry["strategy"] = strategy
        if node.heights:
            entry["heights"] = list(node.heights)
        if node.parked:
            entry["parked"] = node.parked
        if node.rule_outcomes:
            entry["rules"] = {
                rule: list(tally)
                for rule, tally in sorted(node.rule_outcomes.items())
            }
        if node.rejects:
            entry["rejects"] = dict(sorted(node.rejects.items()))
        if node.problems:
            entry["problems"] = list(node.problems)
        entries[node_id] = entry
    return entries


def record_from_run(
    spans: Sequence[Span],
    events: Sequence[ObsEvent],
    solver: Optional[str] = None,
    timeout: Optional[float] = None,
    context: Optional[Dict] = None,
) -> Dict:
    """Build one analytics record from a run's span/event streams.

    ``solver`` is inferred from the root ``synth`` spans when not given
    (every instrumented solver stamps it there).
    """
    report = build_explain(spans, events)
    if solver is None:
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.parent_id is not None and span.parent_id in by_id:
                continue
            candidate = span.attrs.get("solver")
            if isinstance(candidate, str) and candidate:
                solver = candidate
                break
    problems = {
        problem
        for node in report.nodes.values()
        for problem in node.problems
    }
    record = {
        "format": ANALYTICS_FORMAT,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "solver": solver or "unknown",
        "problems": len(problems),
        "total_wall": round(report.total_wall, 6),
        "nodes": node_entries(report),
    }
    if timeout is not None:
        record["timeout_seconds"] = timeout
    if context:
        record["context"] = dict(context)
    return record


def load_analytics(path: str) -> List[Dict]:
    """Read an analytics store tolerantly; missing file = empty store."""
    from repro.obs.export import read_jsonl_tolerant

    try:
        records = read_jsonl_tolerant(path)
    except OSError:
        return []
    return [r for r in records if r.get("format") == ANALYTICS_FORMAT]


def append_analytics(path: str, record: Dict) -> None:
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def query_node(
    records: Iterable[Dict], node_id: str
) -> List[Tuple[Dict, Dict]]:
    """All ``(run_record, node_entry)`` pairs mentioning ``node_id``."""
    rows: List[Tuple[Dict, Dict]] = []
    for record in records:
        entry = record.get("nodes", {}).get(node_id)
        if entry is not None:
            rows.append((record, entry))
    return rows


def aggregate_node(rows: Sequence[Tuple[Dict, Dict]]) -> Dict:
    """Cross-run summary of one node — the adaptive-scheduling features."""
    outcomes: Dict[str, int] = {}
    strategies: Dict[str, int] = {}
    rules: Dict[str, List[int]] = {}
    heights: set = set()
    total_wall = 0.0
    smt_rounds = 0
    for _, entry in rows:
        outcome = entry.get("outcome", "unsolved")
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        strategy = entry.get("strategy")
        if strategy:
            strategies[strategy] = strategies.get(strategy, 0) + 1
        for rule, tally in entry.get("rules", {}).items():
            merged = rules.setdefault(rule, [0, 0])
            merged[0] += tally[0]
            merged[1] += tally[1]
        heights.update(entry.get("heights", []))
        total_wall += float(entry.get("self_wall", 0.0))
        smt_rounds += int(entry.get("smt_rounds", 0))
    runs = len(rows)
    return {
        "runs": runs,
        "solved_runs": sum(
            count for outcome, count in outcomes.items()
            if outcome != "unsolved"
        ),
        "outcomes": outcomes,
        "strategies": strategies,
        "rules": rules,
        "heights": sorted(heights),
        "total_self_wall": round(total_wall, 6),
        "mean_self_wall": round(total_wall / runs, 6) if runs else 0.0,
        "smt_rounds": smt_rounds,
    }


# ---------------------------------------------------------------------------
# Rendering (the ``dryadsynth history`` report)
# ---------------------------------------------------------------------------


def render_node_history(
    node_id: str, rows: Sequence[Tuple[Dict, Dict]]
) -> str:
    """Per-run rows + cross-run aggregate for one node."""
    if not rows:
        return f"{node_id}: no analytics records"
    summary = aggregate_node(rows)
    fun = rows[-1][1].get("fun", "?")
    lines = [
        f"{node_id} {fun}: runs: {summary['runs']} "
        f"(solved in {summary['solved_runs']}), mean self wall "
        f"{summary['mean_self_wall']:.3f}s, "
        f"{summary['smt_rounds']} SMT round(s) total"
    ]
    if summary["strategies"]:
        strategies = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(
                summary["strategies"].items(), key=lambda kv: -kv[1]
            )
        )
        lines.append(f"  strategies: {strategies}")
    if summary["rules"]:
        rules = ", ".join(
            f"{rule} {tally[0]}f/{tally[1]}x"
            for rule, tally in sorted(summary["rules"].items())
        )
        lines.append(f"  rules (fired/failed): {rules}")
    if summary["heights"]:
        lines.append(
            "  heights tried: "
            + ", ".join(str(h) for h in summary["heights"])
        )
    lines.append("  per-run:")
    for record, entry in rows:
        detail = [
            entry.get("outcome", "unsolved"),
            f"self {float(entry.get('self_wall', 0.0)):.3f}s",
            f"smt {entry.get('smt_rounds', 0)}r",
        ]
        if entry.get("strategy"):
            detail.append(f"strategy {entry['strategy']}")
        if entry.get("cegis_iters"):
            detail.append(f"cegis {entry['cegis_iters']}it")
        lines.append(
            f"    {record.get('recorded_at', '?'):<21} "
            f"{record.get('solver', '?'):<12} " + ", ".join(detail)
        )
    return "\n".join(lines)


def render_store_summary(records: Sequence[Dict], top: int = 10) -> str:
    """Store-wide view: hottest nodes by cumulative self wall."""
    if not records:
        return "analytics store is empty"
    per_node: Dict[str, Dict] = {}
    for record in records:
        for node_id, entry in record.get("nodes", {}).items():
            agg = per_node.setdefault(
                node_id,
                {"fun": entry.get("fun", "?"), "runs": 0, "solved": 0,
                 "wall": 0.0, "smt_rounds": 0},
            )
            agg["runs"] += 1
            agg["solved"] += int(entry.get("outcome", "unsolved") != "unsolved")
            agg["wall"] += float(entry.get("self_wall", 0.0))
            agg["smt_rounds"] += int(entry.get("smt_rounds", 0))
    ranked = sorted(per_node.items(), key=lambda kv: -kv[1]["wall"])
    lines = [
        f"analytics store: {len(records)} run record(s), "
        f"{len(per_node)} distinct node(s)"
    ]
    lines.append(
        f"  {'node':<14} {'fun':<14} {'runs':>5} {'solved':>7} "
        f"{'self wall':>10} {'smt':>7}"
    )
    for node_id, agg in ranked[:top]:
        lines.append(
            f"  {node_id:<14} {agg['fun']:<14} {agg['runs']:>5} "
            f"{agg['solved']:>7} {agg['wall']:>9.3f}s {agg['smt_rounds']:>7}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Regression attribution (bench-compare --explain)
# ---------------------------------------------------------------------------


def attribute_regression(
    comparison,
    record: Dict,
    spans: Optional[Sequence[Span]] = None,
    events: Optional[Sequence[ObsEvent]] = None,
    top: int = 3,
) -> str:
    """Explain a failed (or drifting) bench-compare gate.

    Problem-level culprits come straight from the history deltas the gate
    already computed (missing solves + top wall growers); when the current
    run's span dump is available the culprits are drilled into per-phase
    and per-node attribution (:func:`repro.obs.diff.problem_breakdown`),
    so a CI failure names the node where the time sits, not just the
    problem.
    """
    from repro.obs.diff import problem_breakdown, split_by_problem
    from repro.obs.explain import build_explain as _build_explain

    lines: List[str] = ["regression attribution:"]
    culprits: List[str] = []
    if comparison.missing:
        lines.append(
            f"  solved-set loss ({len(comparison.missing)}): "
            + ", ".join(comparison.missing[:top])
            + (" ..." if len(comparison.missing) > top else "")
        )
        culprits.extend(comparison.missing[:top])
    if comparison.top_growers:
        lines.append(
            f"  top-{min(top, len(comparison.top_growers))} wall growers:"
        )
        for name, baseline, current in comparison.top_growers[:top]:
            per_problem = record.get("per_problem", {}).get(name, {})
            state = "solved" if per_problem.get("solved") else "unsolved"
            lines.append(
                f"    {name}: {baseline:.3f}s -> {current:.3f}s "
                f"({current - baseline:+.3f}s, now {state})"
            )
            if name not in culprits:
                culprits.append(name)
    if not culprits:
        lines.append("  no per-problem deltas available to attribute")
        return "\n".join(lines)
    if spans is None:
        lines.append(
            "  (no span dump available - rerun with --spans-out, or pass "
            "--spans, for phase/node attribution)"
        )
        return "\n".join(lines)
    lines.append("  phase/node attribution from the span dump:")
    lines.append(problem_breakdown(spans, events or [], culprits, top=top))
    # Unsolved culprits: name the failure frontier so the report says where
    # the search got stuck, not only where the time went.
    groups = split_by_problem(spans, events or [])
    for name in culprits:
        if name not in groups:
            continue
        report = _build_explain(*groups[name])
        if report.solved or not report.frontier:
            continue
        frontier = report.frontier[0]
        detail = [f"depth {frontier.depth}"]
        if frontier.last_strategy or frontier.strategy:
            detail.append(
                f"last strategy {frontier.last_strategy or frontier.strategy}"
            )
        if frontier.last_rule:
            detail.append(f"last rule {frontier.last_rule}")
        if frontier.last_height is not None:
            detail.append(f"height {frontier.last_height}")
        lines.append(
            f"  {name} frontier: {frontier.node_id} {frontier.fun} "
            f"({', '.join(detail)})"
        )
    return "\n".join(lines)
