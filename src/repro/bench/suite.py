"""The benchmark suite: INV / CLIA / General track families.

Each family is parameterised the way the SyGuS-Comp benchmarks are (loop
bounds, arities, grammar restrictions), so the suite spans trivial to
unsolvable-within-timeout for every solver — which is what the paper's
cactus plots and per-track counts need to reproduce their shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.lang.ast import Term
from repro.lang.builders import (
    add,
    and_,
    eq,
    ge,
    gt,
    implies,
    int_const,
    int_var,
    ite,
    le,
    lt,
    not_,
    or_,
    sub,
)
from repro.lang.sorts import BOOL, INT
from repro.sygus.grammar import (
    Grammar,
    InterpretedFunction,
    clia_grammar,
    nonterminal,
    qm_grammar,
)
from repro.sygus.problem import InvariantProblem, SygusProblem, SynthFun


@dataclass(frozen=True)
class Benchmark:
    """A named benchmark: a problem builder plus track metadata."""

    name: str
    track: str  # "INV" | "CLIA" | "General"
    build: Callable[[], SygusProblem]
    difficulty: int = 1  # 1 (trivial) .. 5 (hard)

    def problem(self) -> SygusProblem:
        return self.build()


# ---------------------------------------------------------------------------
# CLIA track
# ---------------------------------------------------------------------------


def _max_n_problem(n: int) -> SygusProblem:
    params = tuple(int_var(f"x{i}") for i in range(n))
    fun = SynthFun("f", params, INT, clia_grammar(params))
    fx = fun.apply(params)
    spec = and_(
        *(ge(fx, p) for p in params),
        or_(*(eq(fx, p) for p in params)),
    )
    return SygusProblem(fun, spec, params, track="CLIA", name=f"max{n}")


def _min_n_problem(n: int) -> SygusProblem:
    params = tuple(int_var(f"x{i}") for i in range(n))
    fun = SynthFun("f", params, INT, clia_grammar(params))
    fx = fun.apply(params)
    spec = and_(
        *(le(fx, p) for p in params),
        or_(*(eq(fx, p) for p in params)),
    )
    return SygusProblem(fun, spec, params, track="CLIA", name=f"min{n}")


def _abs_problem() -> SygusProblem:
    x = int_var("x")
    fun = SynthFun("f", (x,), INT, clia_grammar((x,)))
    fx = fun.apply((x,))
    spec = and_(ge(fx, x), ge(fx, sub(0, x)), or_(eq(fx, x), eq(fx, sub(0, x))))
    return SygusProblem(fun, spec, (x,), track="CLIA", name="abs")


def _reference_problem(name: str, params, body: Term) -> SygusProblem:
    fun = SynthFun("f", tuple(params), INT, clia_grammar(tuple(params)))
    fx = fun.apply(tuple(params))
    return SygusProblem(fun, eq(fx, body), tuple(params), track="CLIA", name=name)


def _clamp_problem() -> SygusProblem:
    x, lo, hi = int_var("x"), int_var("lo"), int_var("hi")
    body = ite(lt(x, lo), lo, ite(gt(x, hi), hi, x))
    return _reference_problem("clamp", (x, lo, hi), body)


def _array_search_problem(n: int) -> SygusProblem:
    """The classic array_search_n: index of key k in sorted y1 < ... < yn."""
    ys = tuple(int_var(f"y{i}") for i in range(1, n + 1))
    k = int_var("k")
    params = ys + (k,)
    fun = SynthFun("f", params, INT, clia_grammar(params))
    fx = fun.apply(params)
    sortedness = and_(*(lt(ys[i], ys[i + 1]) for i in range(n - 1))) if n > 1 else None
    conditions = [
        implies(lt(k, ys[0]), eq(fx, 0)),
        implies(gt(k, ys[-1]), eq(fx, n)),
    ]
    for i in range(n - 1):
        conditions.append(
            implies(and_(gt(k, ys[i]), lt(k, ys[i + 1])), eq(fx, i + 1))
        )
    spec = and_(*conditions)
    if sortedness is not None:
        spec = implies(sortedness, spec)
    return SygusProblem(fun, spec, params, track="CLIA", name=f"array_search_{n}")


def _commutative_max_problem() -> SygusProblem:
    """A multi-invocation spec (defeats single-invocation CEGQI)."""
    x, y = int_var("x"), int_var("y")
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fxy = fun.apply((x, y))
    fyx = fun.apply((y, x))
    spec = and_(
        eq(fxy, fyx),
        ge(fxy, x),
        ge(fxy, y),
        or_(eq(fxy, x), eq(fxy, y)),
    )
    return SygusProblem(fun, spec, (x, y), track="CLIA", name="max2-commutative")


def _ite_reference(name: str, n_extra: int) -> SygusProblem:
    """Conditional reference implementations of growing height."""
    x, y = int_var("x"), int_var("y")
    body: Term = ite(ge(x, y), sub(x, y), sub(y, x))  # |x - y|
    for i in range(n_extra):
        body = ite(ge(x, int_const(i)), add(body, 1), body)
    return _reference_problem(name, (x, y), body)


def _sum_guard_problem() -> SygusProblem:
    x, y = int_var("x"), int_var("y")
    body = ite(ge(add(x, y), 0), add(x, y), int_const(0))
    return _reference_problem("relu-sum", (x, y), body)


def _band_problem(width: int) -> SygusProblem:
    """Underconstrained spec: any value in a band of the given width works."""
    x = int_var("x")
    fun = SynthFun("f", (x,), INT, clia_grammar((x,)))
    fx = fun.apply((x,))
    spec = and_(ge(fx, x), le(fx, add(x, width)))
    return SygusProblem(fun, spec, (x,), track="CLIA", name=f"band-{width}")


def _signum_problem() -> SygusProblem:
    x = int_var("x")
    body = ite(gt(x, 0), int_const(1), ite(lt(x, 0), int_const(-1), int_const(0)))
    return _reference_problem("signum", (x,), body)


def _max_offset_problem(offset: int) -> SygusProblem:
    x, y = int_var("x"), int_var("y")
    body = ite(ge(x, y), add(x, offset), add(y, offset))
    return _reference_problem(f"max2-plus-{offset}", (x, y), body)


def _saturating_sub_problem() -> SygusProblem:
    x, y = int_var("x"), int_var("y")
    body = ite(ge(sub(x, y), 0), sub(x, y), int_const(0))
    return _reference_problem("saturating-sub", (x, y), body)


def _tie_break_problem() -> SygusProblem:
    """Prefer x on ties: multi-conjunct single-invocation spec."""
    x, y = int_var("x"), int_var("y")
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fx = fun.apply((x, y))
    spec = and_(
        implies(ge(x, y), eq(fx, x)),
        implies(lt(x, y), eq(fx, y)),
    )
    return SygusProblem(fun, spec, (x, y), track="CLIA", name="tie-break")


def _pbe_problem(name: str, arity: int, examples, difficulty_hint=None) -> SygusProblem:
    """Programming-by-example constraints: concrete input/output pairs.

    Deduction cannot force an implementation from finitely many points, so
    these exercise the enumerative engines specifically (the paper counts
    PBE under enumerative synthesis, Section 1).
    """
    params = tuple(int_var(f"x{i}") for i in range(arity))
    fun = SynthFun("f", params, INT, clia_grammar(params))
    constraints = []
    for inputs, output in examples:
        actuals = tuple(int_const(v) for v in inputs)
        constraints.append(eq(fun.apply(actuals), int_const(output)))
    spec = and_(*constraints)
    return SygusProblem(fun, spec, params, track="CLIA", name=name)


def _pbe_from_function(name: str, arity: int, func, points) -> SygusProblem:
    examples = [(pt, func(*pt)) for pt in points]
    return _pbe_problem(name, arity, examples)


_PBE_POINTS_2 = [(0, 0), (1, 5), (5, 1), (-3, 2), (4, 4), (-2, -7), (9, -1)]
_PBE_POINTS_1 = [(0,), (1,), (-1,), (5,), (-6,), (12,)]


def pbe_benchmarks() -> List[Benchmark]:
    """PBE-flavoured CLIA benchmarks over fixed example sets."""
    cases = [
        ("pbe-max2", 2, lambda a, b: max(a, b), _PBE_POINTS_2, 2),
        ("pbe-min2", 2, lambda a, b: min(a, b), _PBE_POINTS_2, 2),
        ("pbe-abs", 1, abs, _PBE_POINTS_1, 2),
        ("pbe-double", 1, lambda a: 2 * a, _PBE_POINTS_1, 1),
        ("pbe-sum-plus-one", 2, lambda a, b: a + b + 1, _PBE_POINTS_2, 1),
        ("pbe-relu", 1, lambda a: max(a, 0), _PBE_POINTS_1, 2),
        ("pbe-diff-abs", 2, lambda a, b: abs(a - b), _PBE_POINTS_2, 3),
        ("pbe-clip5", 1, lambda a: min(a, 5), _PBE_POINTS_1, 2),
    ]
    return [
        Benchmark(
            name,
            "CLIA",
            (lambda n=name, a=arity, f=func, p=points: _pbe_from_function(n, a, f, p)),
            difficulty,
        )
        for name, arity, func, points, difficulty in cases
    ]


def clia_benchmarks() -> List[Benchmark]:
    benchmarks: List[Benchmark] = []
    for n in (2, 3, 4, 5):
        benchmarks.append(
            Benchmark(f"max{n}", "CLIA", (lambda n=n: _max_n_problem(n)), min(n - 1, 5))
        )
        benchmarks.append(
            Benchmark(f"min{n}", "CLIA", (lambda n=n: _min_n_problem(n)), min(n - 1, 5))
        )
    benchmarks.append(Benchmark("abs", "CLIA", _abs_problem, 1))
    benchmarks.append(Benchmark("clamp", "CLIA", _clamp_problem, 2))
    benchmarks.append(Benchmark("relu-sum", "CLIA", _sum_guard_problem, 2))
    for n in (2, 3):
        benchmarks.append(
            Benchmark(
                f"array_search_{n}",
                "CLIA",
                (lambda n=n: _array_search_problem(n)),
                n + 1,
            )
        )
    benchmarks.append(Benchmark("max2-commutative", "CLIA", _commutative_max_problem, 2))
    benchmarks.append(
        Benchmark("abs-diff", "CLIA", (lambda: _ite_reference("abs-diff", 0)), 2)
    )
    for extra in (1, 2):
        benchmarks.append(
            Benchmark(
                f"abs-diff-step{extra}",
                "CLIA",
                (lambda e=extra: _ite_reference(f"abs-diff-step{e}", e)),
                2 + extra,
            )
        )
    x, y, z = int_var("x"), int_var("y"), int_var("z")
    benchmarks.append(
        Benchmark(
            "median3",
            "CLIA",
            (
                lambda: _reference_problem(
                    "median3",
                    (x, y, z),
                    ite(
                        ge(x, y),
                        ite(ge(y, z), y, ite(ge(x, z), z, x)),
                        ite(ge(x, z), x, ite(ge(y, z), z, y)),
                    ),
                )
            ),
            4,
        )
    )
    benchmarks.append(
        Benchmark(
            "linear-comb",
            "CLIA",
            (lambda: _reference_problem("linear-comb", (x, y), add(x, x, y, 1))),
            1,
        )
    )
    for width in (0, 2, 5):
        benchmarks.append(
            Benchmark(f"band-{width}", "CLIA", (lambda w=width: _band_problem(w)), 1)
        )
    benchmarks.append(Benchmark("signum", "CLIA", _signum_problem, 3))
    for offset in (1, 3):
        benchmarks.append(
            Benchmark(
                f"max2-plus-{offset}",
                "CLIA",
                (lambda o=offset: _max_offset_problem(o)),
                2,
            )
        )
    benchmarks.append(Benchmark("saturating-sub", "CLIA", _saturating_sub_problem, 2))
    benchmarks.append(Benchmark("tie-break", "CLIA", _tie_break_problem, 2))
    return benchmarks


# ---------------------------------------------------------------------------
# INV track
# ---------------------------------------------------------------------------


def _count_up(bound: int) -> SygusProblem:
    x = int_var("x")
    return InvariantProblem.from_updates(
        (x,),
        eq(x, 0),
        (ite(lt(x, bound), add(x, 1), x),),
        implies(not_(lt(x, bound)), eq(x, bound)),
        name=f"count-up-{bound}",
    ).to_sygus()


def _count_down(bound: int) -> SygusProblem:
    x = int_var("x")
    return InvariantProblem.from_updates(
        (x,),
        eq(x, bound),
        (ite(gt(x, 0), sub(x, 1), x),),
        implies(not_(gt(x, 0)), eq(x, 0)),
        name=f"count-down-{bound}",
    ).to_sygus()


def _twin_counters(bound: int) -> SygusProblem:
    x, y = int_var("x"), int_var("y")
    return InvariantProblem.from_updates(
        (x, y),
        and_(eq(x, 0), eq(y, 0)),
        (
            ite(lt(x, bound), add(x, 1), x),
            ite(lt(x, bound), add(y, 1), y),
        ),
        implies(not_(lt(x, bound)), eq(y, bound)),
        name=f"twin-counters-{bound}",
    ).to_sygus()


def _crossing(bound: int) -> SygusProblem:
    """x climbs while y descends; they must meet at the configured bound."""
    x, y = int_var("x"), int_var("y")
    return InvariantProblem.from_updates(
        (x, y),
        and_(eq(x, 0), eq(y, bound)),
        (
            ite(lt(x, bound), add(x, 1), x),
            ite(lt(x, bound), sub(y, 1), y),
        ),
        implies(not_(lt(x, bound)), eq(y, 0)),
        name=f"crossing-{bound}",
    ).to_sygus()


def _cap_only(bound: int) -> SygusProblem:
    x = int_var("x")
    return InvariantProblem.from_updates(
        (x,),
        eq(x, 0),
        (ite(lt(x, bound), add(x, 1), x),),
        le(x, bound),
        name=f"cap-{bound}",
    ).to_sygus()


def _hold_value(bound: int) -> SygusProblem:
    """A stationary variable must keep its initial value."""
    x, y = int_var("x"), int_var("y")
    return InvariantProblem.from_updates(
        (x, y),
        and_(eq(x, 0), eq(y, 7)),
        (ite(lt(x, bound), add(x, 1), x), y),
        implies(not_(lt(x, bound)), eq(y, 7)),
        name=f"hold-{bound}",
    ).to_sygus()


def _nonconstant_init(bound: int) -> SygusProblem:
    """Precondition is a range, so loop summarisation does not apply."""
    x = int_var("x")
    return InvariantProblem.from_updates(
        (x,),
        and_(ge(x, 0), le(x, 3)),
        (ite(lt(x, bound), add(x, 1), x),),
        le(x, bound),
        name=f"range-init-{bound}",
    ).to_sygus()


def _step2(bound: int) -> SygusProblem:
    """Increment by 2: no unit-step pivot, so loop summarisation stays out."""
    x = int_var("x")
    return InvariantProblem.from_updates(
        (x,),
        eq(x, 0),
        (ite(lt(x, bound), add(x, 2), x),),
        le(x, add(int_const(bound), 1)),
        name=f"step2-{bound}",
    ).to_sygus()


def _three_counters(bound: int) -> SygusProblem:
    x, y, z = int_var("x"), int_var("y"), int_var("z")
    return InvariantProblem.from_updates(
        (x, y, z),
        and_(eq(x, 0), eq(y, 0), eq(z, bound)),
        (
            ite(lt(x, bound), add(x, 1), x),
            ite(lt(x, bound), add(y, 1), y),
            ite(lt(x, bound), sub(z, 1), z),
        ),
        implies(not_(lt(x, bound)), and_(eq(y, bound), eq(z, 0))),
        name=f"three-counters-{bound}",
    ).to_sygus()


def _bounded_drift(bound: int) -> SygusProblem:
    """y trails x by a fixed offset through the whole run."""
    x, y = int_var("x"), int_var("y")
    return InvariantProblem.from_updates(
        (x, y),
        and_(eq(x, 3), eq(y, 0)),
        (ite(lt(x, bound), add(x, 1), x), ite(lt(x, bound), add(y, 1), y)),
        implies(not_(lt(x, bound)), eq(sub(x, y), 3)),
        name=f"drift-{bound}",
    ).to_sygus()


def inv_benchmarks() -> List[Benchmark]:
    benchmarks: List[Benchmark] = []
    for bound in (8, 16, 32, 64, 100, 128):
        benchmarks.append(
            Benchmark(f"count-up-{bound}", "INV", (lambda b=bound: _count_up(b)), 2)
        )
    for bound in (8, 16, 64, 100):
        benchmarks.append(
            Benchmark(f"count-down-{bound}", "INV", (lambda b=bound: _count_down(b)), 2)
        )
    for bound in (8, 16, 64):
        benchmarks.append(
            Benchmark(
                f"twin-counters-{bound}", "INV", (lambda b=bound: _twin_counters(b)), 3
            )
        )
        benchmarks.append(
            Benchmark(f"crossing-{bound}", "INV", (lambda b=bound: _crossing(b)), 3)
        )
    for bound in (8, 64, 100):
        benchmarks.append(
            Benchmark(f"cap-{bound}", "INV", (lambda b=bound: _cap_only(b)), 1)
        )
    for bound in (8, 16):
        benchmarks.append(
            Benchmark(f"hold-{bound}", "INV", (lambda b=bound: _hold_value(b)), 2)
        )
    for bound in (8, 16, 64):
        benchmarks.append(
            Benchmark(
                f"range-init-{bound}", "INV", (lambda b=bound: _nonconstant_init(b)), 3
            )
        )
    for bound in (8, 16, 64):
        benchmarks.append(
            Benchmark(f"step2-{bound}", "INV", (lambda b=bound: _step2(b)), 3)
        )
    for bound in (8, 16):
        benchmarks.append(
            Benchmark(
                f"three-counters-{bound}",
                "INV",
                (lambda b=bound: _three_counters(b)),
                4,
            )
        )
        benchmarks.append(
            Benchmark(f"drift-{bound}", "INV", (lambda b=bound: _bounded_drift(b)), 3)
        )
    return benchmarks


# ---------------------------------------------------------------------------
# General track
# ---------------------------------------------------------------------------


def _qm_reference(name: str, params, body: Term, difficulty: int) -> Benchmark:
    def build() -> SygusProblem:
        fun = SynthFun("f", tuple(params), INT, qm_grammar(tuple(params)))
        fx = fun.apply(tuple(params))
        return SygusProblem(
            fun, eq(fx, body), tuple(params), track="General", name=name
        )

    return Benchmark(name, "General", build, difficulty)


def _double_grammar(params) -> Grammar:
    """S -> 0 | 1 | params | S + S | S - S | double(S)."""
    x1 = int_var("x1")
    double = InterpretedFunction("double", (x1,), add(x1, x1))
    s = nonterminal("S", INT)
    from repro.lang.builders import apply_fn

    rules = [int_const(0), int_const(1)]
    rules.extend(params)
    rules.extend([add(s, s), sub(s, s), apply_fn("double", (s,), INT)])
    return Grammar({"S": INT}, "S", {"S": rules}, {"double": double}, tuple(params))


def _double_problem(k: int) -> SygusProblem:
    """f(x) = 2^k * x in the double-grammar (exercises the Match rule)."""
    x = int_var("x")
    grammar = _double_grammar((x,))
    fun = SynthFun("f", (x,), INT, grammar)
    fx = fun.apply((x,))
    body: Term = x
    for _ in range(k):
        body = add(body, body)
    return SygusProblem(fun, eq(fx, body), (x,), track="General", name=f"double-{k}")


def _operator_grammar(params, *functions: InterpretedFunction) -> Grammar:
    """S -> 0 | 1 | params | S + S | S - S | op(S..) for each operator."""
    from repro.lang.builders import apply_fn

    s = nonterminal("S", INT)
    rules: List[Term] = [int_const(0), int_const(1)]
    rules.extend(params)
    rules.extend([add(s, s), sub(s, s)])
    for func in functions:
        rules.append(apply_fn(func.name, tuple([s] * func.arity), INT))
    return Grammar(
        {"S": INT},
        "S",
        {"S": rules},
        {func.name: func for func in functions},
        tuple(params),
    )


def _nat_function() -> InterpretedFunction:
    """nat(a) = max(a, 0), a unary conditional operator."""
    a = int_var("a1")
    return InterpretedFunction("nat", (a,), ite(lt(a, 0), int_const(0), a))


def _cap_function(bound: int) -> InterpretedFunction:
    a = int_var("a1")
    return InterpretedFunction(
        f"cap{bound}", (a,), ite(gt(a, bound), int_const(bound), a)
    )


def _nat_grammar_problem(name: str, body: Term, params, difficulty: int) -> Benchmark:
    def build() -> SygusProblem:
        grammar = _operator_grammar(tuple(params), _nat_function())
        fun = SynthFun("f", tuple(params), INT, grammar)
        return SygusProblem(
            fun, eq(fun.apply(tuple(params)), body), tuple(params),
            track="General", name=name,
        )

    return Benchmark(name, "General", build, difficulty)


def _cap_grammar_problem(name: str, bound: int, body: Term, params, difficulty: int) -> Benchmark:
    def build() -> SygusProblem:
        grammar = _operator_grammar(tuple(params), _cap_function(bound))
        fun = SynthFun("f", tuple(params), INT, grammar)
        return SygusProblem(
            fun, eq(fun.apply(tuple(params)), body), tuple(params),
            track="General", name=name,
        )

    return Benchmark(name, "General", build, difficulty)


def _plus_grammar_problem() -> SygusProblem:
    """Tiny grammar without constants placeholder: S -> x | y | 1 | S + S."""
    x, y = int_var("x"), int_var("y")
    s = nonterminal("S", INT)
    grammar = Grammar(
        {"S": INT},
        "S",
        {"S": [x, y, int_const(1), add(s, s)]},
        {},
        (x, y),
    )
    fun = SynthFun("f", (x, y), INT, grammar)
    fx = fun.apply((x, y))
    spec = eq(fx, add(x, y, 2))
    return SygusProblem(fun, spec, (x, y), track="General", name="plus-two")


def general_benchmarks() -> List[Benchmark]:
    x, y, z = int_var("x"), int_var("y"), int_var("z")
    benchmarks: List[Benchmark] = [
        _qm_reference("qm-max2", (x, y), ite(ge(x, y), x, y), 2),
        _qm_reference("qm-min2", (x, y), ite(le(x, y), x, y), 2),
        _qm_reference("qm-abs", (x,), ite(ge(x, 0), x, sub(0, x)), 2),
        _qm_reference("qm-relu", (x,), ite(ge(x, 0), x, int_const(0)), 1),
        _qm_reference(
            "qm-max3",
            (x, y, z),
            ite(and_(ge(x, y), ge(x, z)), x, ite(ge(y, z), y, z)),
            5,
        ),
        _qm_reference(
            "qm-min3",
            (x, y, z),
            ite(and_(le(x, y), le(x, z)), x, ite(le(y, z), y, z)),
            5,
        ),
        _qm_reference("qm-clip0", (x, y), ite(ge(x, 0), add(x, y), y), 3),
        _qm_reference("qm-sign-split", (x, y), ite(lt(x, 0), y, add(x, y)), 3),
    ]
    for k in (2, 3, 4):
        benchmarks.append(
            Benchmark(f"double-{k}", "General", (lambda k=k: _double_problem(k)), 1)
        )
    benchmarks.append(Benchmark("plus-two", "General", _plus_grammar_problem, 1))
    benchmarks.append(
        Benchmark("no-const-max2", "General", _restricted_constant_max2, 4)
    )
    benchmarks.extend(
        [
            _qm_reference("qm-shifted-abs", (x,), ite(ge(x, 1), sub(x, 1), sub(1, x)), 3),
            _qm_reference("qm-floor0", (x, y), ite(ge(y, 0), x, sub(x, y)), 3),
            _qm_reference("qm-id", (x,), x, 1),
            _qm_reference("qm-sum", (x, y), add(x, y), 1),
            _qm_reference("qm-diff-or-zero", (x, y),
                          ite(ge(x, y), sub(x, y), int_const(0)), 3),
        ]
    )
    benchmarks.extend(
        [
            _nat_grammar_problem("nat-relu", ite(ge(x, 0), x, int_const(0)), (x,), 1),
            _nat_grammar_problem(
                "nat-max2", ite(ge(x, y), x, y), (x, y), 2
            ),
            _nat_grammar_problem(
                "nat-abs", ite(ge(x, 0), x, sub(0, x)), (x,), 2
            ),
            _cap_grammar_problem(
                "cap-clip10", 10, ite(gt(x, 10), int_const(10), x), (x,), 1
            ),
            _cap_grammar_problem(
                "cap-min2", 10,
                ite(le(x, y), x, y), (x, y), 3
            ),
        ]
    )
    return benchmarks


def _restricted_constant_max2() -> SygusProblem:
    """Full CLIA structure but only the constants 0 and 1 (no Constant Int):
    forces the generic production encoder / plain enumeration."""
    x, y = int_var("x"), int_var("y")
    grammar = clia_grammar((x, y), allow_any_const=False)
    fun = SynthFun("f", (x, y), INT, grammar)
    fx = fun.apply((x, y))
    spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
    return SygusProblem(fun, spec, (x, y), track="General", name="no-const-max2")


# ---------------------------------------------------------------------------
# Suite assembly
# ---------------------------------------------------------------------------


def full_suite() -> List[Benchmark]:
    """Every benchmark, all tracks."""
    return (
        inv_benchmarks()
        + clia_benchmarks()
        + pbe_benchmarks()
        + general_benchmarks()
    )


def suite_by_track() -> Dict[str, List[Benchmark]]:
    tracks: Dict[str, List[Benchmark]] = {"INV": [], "CLIA": [], "General": []}
    for benchmark in full_suite():
        tracks[benchmark.track].append(benchmark)
    return tracks


def find_benchmark(name: str) -> Benchmark:
    for benchmark in full_suite():
        if benchmark.name == name:
            return benchmark
    raise KeyError(f"no benchmark named {name!r}")
