"""Portfolio runner: execute solvers over the suite and collect results.

Results are cached on disk (JSON) keyed by benchmark, solver and timeout, so
the per-figure benchmark harnesses share one set of runs, exactly the way
the paper derives all of Figures 10-16 and Table 1 from a single StarExec
campaign.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.suite import Benchmark, full_suite
from repro.baselines import CegqiSolver, EnumerativeSolver, LoopInvGenSolver
from repro.synth.config import SynthConfig
from repro.synth.cooperative import CooperativeSynthesizer
from repro.synth.deduction import Deducer
from repro.synth.fixed_height import HeightEnumerationSynthesizer
from repro.synth.result import SynthesisOutcome, SynthesisStats

#: Default per-benchmark timeout (seconds); override via REPRO_BENCH_TIMEOUT.
DEFAULT_TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "10"))

SOLVER_NAMES = (
    "dryadsynth",
    "cegqi",
    "eusolver",
    "loopinvgen",
    "height-enum",
    "deduction",
    "dryadsynth-euback",
    "portfolio",
)


@dataclass
class RunResult:
    """One (benchmark, solver) execution."""

    benchmark: str
    track: str
    solver: str
    solved: bool
    time_seconds: float
    solution_size: Optional[int] = None
    solution_height: Optional[int] = None
    timed_out: bool = False
    deduction_solved: bool = False

    def to_json(self) -> Dict:
        return asdict(self)

    @staticmethod
    def from_json(data: Dict) -> "RunResult":
        return RunResult(**data)


class _DeductionOnlySolver:
    """Algorithm 3 standalone (the Figure 15 ablation)."""

    name = "deduction"

    def __init__(self, config: Optional[SynthConfig] = None):
        self.config = config or SynthConfig()

    def synthesize(self, problem) -> SynthesisOutcome:
        from repro.sygus.problem import Solution

        stats = SynthesisStats()
        start = time.monotonic()
        result = Deducer(problem, stats).deduct()
        if result.solution is None:
            return SynthesisOutcome(None, stats)
        elapsed = time.monotonic() - start
        return SynthesisOutcome(
            Solution(problem, result.solution, self.name, elapsed), stats
        )


def _euback_engine(problem, height, examples, config, deadline, stats):
    """EUSolver as the enumerative component (the Figure 16 hybrid).

    The paper could not bound EUSolver's search per height, so each call
    searches a growing size class instead of an exact height.  Like the
    fixed-height engine it replaces, this runs a full CEGIS loop, so only
    *verified* candidates are returned.
    """
    from repro.synth.cegis import cegis

    solver = EnumerativeSolver(config, max_size=3 * height)

    def ind_synth(current_examples):
        return solver.synthesize_from_examples(
            problem, current_examples, deadline, stats
        )

    body, _, iterations = cegis(
        problem,
        ind_synth,
        examples=examples,
        max_rounds=config.max_cegis_rounds,
        deadline=deadline,
    )
    stats.cegis_iterations += iterations
    return body


def make_solver(
    name: str,
    timeout: Optional[float] = None,
    config: Optional[SynthConfig] = None,
):
    """Instantiate a solver by portfolio name.

    Pass ``config`` to control every knob (the service's job engine does);
    ``timeout``, when given, overrides the config's budget.
    """
    if config is None:
        config = SynthConfig(timeout=timeout)
    elif timeout is not None:
        config = replace(config, timeout=timeout)
    if name == "portfolio":
        from repro.synth.portfolio import SequentialPortfolio

        return SequentialPortfolio.default(config)
    if name == "dryadsynth":
        return CooperativeSynthesizer(config)
    if name == "cegqi":
        return CegqiSolver(config)
    if name == "eusolver":
        return EnumerativeSolver(config)
    if name == "loopinvgen":
        return LoopInvGenSolver(config)
    if name == "height-enum":
        return HeightEnumerationSynthesizer(config)
    if name == "deduction":
        return _DeductionOnlySolver(config)
    if name == "dryadsynth-euback":
        return CooperativeSynthesizer(
            config, enum_engine=_euback_engine, name="dryadsynth-euback"
        )
    raise ValueError(f"unknown solver {name!r}")


def run_benchmark(
    benchmark: Benchmark, solver_name: str, timeout: float
) -> RunResult:
    """Run one solver on one benchmark with a wall-clock budget."""
    problem = benchmark.problem()
    solver = make_solver(solver_name, timeout)
    start = time.monotonic()
    try:
        outcome = solver.synthesize(problem)
    except Exception:
        outcome = SynthesisOutcome(None, SynthesisStats(), timed_out=True)
    elapsed = time.monotonic() - start
    result = RunResult(
        benchmark=benchmark.name,
        track=benchmark.track,
        solver=solver_name,
        solved=outcome.solved,
        time_seconds=round(elapsed, 4),
        timed_out=outcome.timed_out or elapsed > timeout,
        deduction_solved=outcome.stats.deduction_solved,
    )
    if outcome.solution is not None:
        result.solution_size = outcome.solution.size
        result.solution_height = outcome.solution.height
    return result


class ResultsCache:
    """Disk-backed cache of run results shared by the figure harnesses."""

    def __init__(self, path: Optional[str] = None):
        if path is None:
            path = os.environ.get(
                "REPRO_BENCH_CACHE",
                os.path.join(os.path.dirname(__file__), "..", "..", "..",
                             "bench_results.json"),
            )
        self.path = os.path.abspath(path)
        self._results: Dict[str, Dict] = {}
        self._load()

    @staticmethod
    def _key(benchmark: str, solver: str, timeout: float) -> str:
        return f"{benchmark}::{solver}::{timeout:g}"

    def _load(self) -> None:
        if os.path.exists(self.path):
            try:
                with open(self.path) as handle:
                    self._results = json.load(handle)
            except (OSError, json.JSONDecodeError):
                self._results = {}

    def save(self) -> None:
        with open(self.path, "w") as handle:
            json.dump(self._results, handle, indent=1, sort_keys=True)

    def get(self, benchmark: Benchmark, solver: str, timeout: float) -> Optional[RunResult]:
        data = self._results.get(self._key(benchmark.name, solver, timeout))
        return RunResult.from_json(data) if data else None

    def put(self, result: RunResult, timeout: float) -> None:
        self._results[self._key(result.benchmark, result.solver, timeout)] = (
            result.to_json()
        )


def run_suite(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    solvers: Sequence[str] = SOLVER_NAMES,
    timeout: float = DEFAULT_TIMEOUT,
    cache: Optional[ResultsCache] = None,
    use_cache: bool = True,
    progress: Optional[Callable[[RunResult], None]] = None,
    jobs: int = 1,
) -> List[RunResult]:
    """Run the portfolio; returns one :class:`RunResult` per (bench, solver).

    With ``jobs > 1`` the campaign executes on the service's
    :class:`~repro.service.pool.WorkerPool`: ``jobs`` worker processes, a
    hard deadline per run enforced by the parent, crash isolation with one
    retry.  Results (and their on-disk cache) are identical either way.
    """
    if benchmarks is None:
        benchmarks = full_suite()
    if cache is None and use_cache:
        cache = ResultsCache()
    if jobs > 1:
        return _run_suite_parallel(benchmarks, solvers, timeout, cache, progress, jobs)
    results: List[RunResult] = []
    for benchmark in benchmarks:
        for solver_name in solvers:
            result = cache.get(benchmark, solver_name, timeout) if cache else None
            if result is None:
                result = run_benchmark(benchmark, solver_name, timeout)
                if cache:
                    cache.put(result, timeout)
                    # Persist after every fresh run: campaigns are long and
                    # must survive interruption.
                    cache.save()
            results.append(result)
            if progress is not None:
                progress(result)
    return results


def _run_suite_parallel(
    benchmarks: Sequence[Benchmark],
    solvers: Sequence[str],
    timeout: float,
    cache: Optional[ResultsCache],
    progress: Optional[Callable[[RunResult], None]],
    jobs: int,
) -> List[RunResult]:
    """Campaign execution through the process-parallel job engine."""
    from repro.service.jobs import JobResult, SynthesisJob
    from repro.service.pool import WorkerPool

    order: List[Tuple[Benchmark, str]] = [
        (benchmark, solver) for benchmark in benchmarks for solver in solvers
    ]
    completed: Dict[str, RunResult] = {}
    todo: List[SynthesisJob] = []
    todo_keys: List[Tuple[Benchmark, str]] = []
    for benchmark, solver_name in order:
        key = f"{benchmark.name}::{solver_name}"
        cached = cache.get(benchmark, solver_name, timeout) if cache else None
        if cached is not None:
            completed[key] = cached
            continue
        todo.append(
            SynthesisJob.from_problem(
                benchmark.problem(),
                solver=solver_name,
                timeout=timeout,
                job_id=key,
                name=benchmark.name,
            )
        )
        todo_keys.append((benchmark, solver_name))
    if todo:
        by_id = {key: pair for key, pair in zip((j.job_id for j in todo), todo_keys)}

        def on_result(job_result: JobResult) -> None:
            benchmark, solver_name = by_id[job_result.job_id]
            run = _job_to_run_result(benchmark, solver_name, timeout, job_result)
            completed[job_result.job_id] = run
            if cache:
                cache.put(run, timeout)
                cache.save()

        with WorkerPool(workers=jobs) as pool:
            pool.run(todo, progress=on_result)
    results: List[RunResult] = []
    for benchmark, solver_name in order:
        result = completed[f"{benchmark.name}::{solver_name}"]
        results.append(result)
        if progress is not None:
            progress(result)
    return results


def _job_to_run_result(
    benchmark: Benchmark, solver_name: str, timeout: float, job_result
) -> RunResult:
    """Translate a service :class:`JobResult` into the campaign's record."""
    solved = job_result.status == "solved"
    return RunResult(
        benchmark=benchmark.name,
        track=benchmark.track,
        solver=solver_name,
        solved=solved,
        time_seconds=round(job_result.wall_time, 4),
        solution_size=job_result.solution_size,
        solution_height=job_result.solution_height,
        timed_out=job_result.status in ("timeout", "crashed")
        or job_result.wall_time > timeout,
        deduction_solved=bool(job_result.stats.get("deduction_solved", False)),
    )
