"""Quick-bench smoke run: the demo subset under a small per-problem budget.

A CI-sized benchmark pass (``python -m repro.bench.quick_bench``) that runs
one solver over the 85-problem demo subset — the generated suite minus four
slow-but-solved stragglers — and writes two artifacts:

- ``quick_bench.jsonl``: one JSON record per problem (solved, wall time,
  and the SMT-substrate counters: DPLL(T) rounds, theory lemmas,
  assumption-core skips, learnt clauses deleted);
- ``quick_bench_summary.json``: the aggregate totals.

The point is per-PR perf visibility: a regression in the incremental SMT
core shows up as a jump in cumulative rounds or a drop in solved count
right in the workflow artifact, without waiting for a full campaign.

``--telemetry`` records the whole pass under the :mod:`repro.obs` layer;
``--metrics-out`` dumps the merged registry as Prometheus text (the CI
metrics artifact).  ``--min-solved N`` turns the run into a simple gate:
exit non-zero when fewer than N problems solve.  CI's actual gate is the
richer ``dryadsynth bench-compare`` (see :mod:`repro.bench.history`), which
reuses this run's artifacts and compares them against the committed
``BENCH_history.jsonl`` trailing baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import asdict
from typing import Dict, List

from repro.bench.runner import make_solver
from repro.bench.suite import full_suite
from repro.synth.result import SynthesisOutcome, SynthesisStats

#: Excluded from the demo subset: solvable but slow enough to dominate a
#: smoke run's wall clock (see docs/SERVICE.md "Measured behaviour").
EXCLUDED = frozenset({"qm-floor0", "qm-max2", "range-init-64", "step2-64"})


def demo_subset():
    """The 85-problem demo subset of the generated suite."""
    return [b for b in full_suite() if b.name not in EXCLUDED]


def run_quick_bench(
    solver_name: str = "dryadsynth",
    timeout: float = 2.0,
    telemetry: bool = False,
    smt_corpus: str = None,
    sample: bool = False,
) -> Dict:
    """Run the demo subset; returns ``{"records": [...], "summary": {...}}``.

    With ``telemetry`` the pass runs under an ambient span recorder, which
    is returned as ``"recorder"`` so callers can export spans/metrics.
    With ``smt_corpus`` every SMT query is captured into one
    ``<benchmark>.smtq.jsonl`` per problem in that directory (replay with
    ``dryadsynth smt-replay``).  With ``sample`` (implies telemetry) a
    wall-clock stack sampler runs over the whole pass; the profile is
    attached to the recorder (so span dumps carry it) and returned as
    ``"profile"``, and the summary gains a ``rusage`` block either way.
    """
    from repro.obs import rusage

    usage_before = rusage.snapshot()
    if telemetry or sample:
        from repro import obs
        from repro.obs.sampler import StackSampler

        with obs.recording() as recorder:
            sampler = None
            if sample:
                sampler = StackSampler(recorder=recorder).start()
            try:
                result = _run_quick_bench_impl(
                    solver_name, timeout, smt_corpus
                )
            finally:
                if sampler is not None:
                    sampler.stop()
        if sampler is not None:
            recorder.profile = sampler.profile
            result["profile"] = sampler.profile
            recorder.metrics.counter("obs.stack_samples").inc(
                sampler.profile.samples
            )
        result["recorder"] = recorder
        result["summary"]["rusage"] = rusage.delta(usage_before)
        return result
    result = _run_quick_bench_impl(solver_name, timeout, smt_corpus)
    result["summary"]["rusage"] = rusage.delta(usage_before)
    return result


def _run_quick_bench_impl(
    solver_name: str, timeout: float, smt_corpus: str = None
) -> Dict:
    import contextlib

    records: List[Dict] = []
    totals = SynthesisStats()
    solved = 0
    start = time.monotonic()
    for benchmark in demo_subset():
        problem = benchmark.problem()
        solver = make_solver(solver_name, timeout)
        if smt_corpus:
            from repro.smt.capture import capturing

            capture_ctx = capturing(smt_corpus, benchmark.name)
        else:
            capture_ctx = contextlib.nullcontext()
        bench_start = time.monotonic()
        try:
            with capture_ctx:
                outcome = solver.synthesize(problem)
        except Exception:
            outcome = SynthesisOutcome(None, SynthesisStats(), timed_out=True)
        wall = time.monotonic() - bench_start
        stats = outcome.stats
        totals.merge(stats)
        solved += int(outcome.solved)
        records.append(
            {
                "benchmark": benchmark.name,
                "track": benchmark.track,
                "solver": solver_name,
                "solved": outcome.solved,
                "timed_out": outcome.timed_out,
                "wall_seconds": round(wall, 4),
                "smt_checks": stats.smt_checks,
                "smt_rounds": stats.smt_rounds,
                "theory_lemmas": stats.theory_lemmas,
                "assumption_core_skips": stats.assumption_core_skips,
                "learnt_clauses_deleted": stats.learnt_clauses_deleted,
            }
        )
    summary = {
        "solver": solver_name,
        "timeout_seconds": timeout,
        "problems": len(records),
        "solved": solved,
        "wall_seconds": round(time.monotonic() - start, 2),
        "stats": asdict(totals),
    }
    return {"records": records, "summary": summary}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the demo-subset quick bench and write JSONL artifacts."
    )
    parser.add_argument("--solver", default="dryadsynth")
    parser.add_argument(
        "--timeout", type=float, default=2.0, help="per-problem budget (s)"
    )
    parser.add_argument(
        "--out", default="quick-bench", help="output directory for artifacts"
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record the pass with repro.obs (implied by --metrics-out)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the run's merged metrics as Prometheus text to PATH",
    )
    parser.add_argument(
        "--spans-out",
        metavar="PATH",
        default=None,
        help="write the run's span stream as JSONL to PATH (implies "
        "--telemetry; render with `dryadsynth profile` or "
        "`dryadsynth explain`)",
    )
    parser.add_argument(
        "--analytics-out",
        metavar="PATH",
        default=None,
        help="fold the run's forensics into one per-node analytics record "
        "and append it to PATH (implies --telemetry; query with "
        "`dryadsynth history --store PATH`)",
    )
    parser.add_argument(
        "--smt-corpus",
        metavar="DIR",
        default=None,
        help="capture every SMT query into one <benchmark>.smtq.jsonl per "
        "problem in DIR (replay with `dryadsynth smt-replay DIR`)",
    )
    parser.add_argument(
        "--sample",
        action="store_true",
        help="run a wall-clock stack sampler over the whole pass (implies "
        "--telemetry; render with `dryadsynth flame`)",
    )
    parser.add_argument(
        "--collapsed-out",
        metavar="PATH",
        default=None,
        help="write the sampled profile as FlameGraph/speedscope "
        "collapsed-stack text to PATH (implies --sample)",
    )
    parser.add_argument(
        "--min-solved",
        type=int,
        default=None,
        metavar="N",
        help="fail (exit 1) when fewer than N problems solve",
    )
    parser.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="emit structured JSON log lines (repro-log/1) to PATH, "
        "or to stderr with '-'",
    )
    args = parser.parse_args(argv)
    if args.log_json:
        from repro.obs.log import configure_json_logging, remove_json_logging

        handler = configure_json_logging(args.log_json)
        try:
            return _main_impl(args)
        finally:
            remove_json_logging(handler)
    return _main_impl(args)


def _main_impl(args) -> int:
    sample = bool(args.sample or args.collapsed_out)
    telemetry = bool(
        args.telemetry
        or args.metrics_out
        or args.spans_out
        or args.analytics_out
        or sample
    )
    result = run_quick_bench(
        args.solver,
        args.timeout,
        telemetry=telemetry,
        smt_corpus=args.smt_corpus,
        sample=sample,
    )
    os.makedirs(args.out, exist_ok=True)
    jsonl_path = os.path.join(args.out, "quick_bench.jsonl")
    with open(jsonl_path, "w") as handle:
        for record in result["records"]:
            handle.write(json.dumps(record) + "\n")
    summary_path = os.path.join(args.out, "quick_bench_summary.json")
    with open(summary_path, "w") as handle:
        json.dump(result["summary"], handle, indent=2)
        handle.write("\n")
    summary = result["summary"]
    stats = summary["stats"]
    print(
        f"quick-bench: {summary['solved']}/{summary['problems']} solved "
        f"in {summary['wall_seconds']}s "
        f"(rounds={stats['smt_rounds']} lemmas={stats['theory_lemmas']} "
        f"core_skips={stats['assumption_core_skips']} "
        f"deleted={stats['learnt_clauses_deleted']})"
    )
    print(f"wrote {jsonl_path} and {summary_path}")
    if args.metrics_out:
        from repro.obs.export import write_metrics_text

        write_metrics_text(result["recorder"].metrics, args.metrics_out)
        print(f"wrote {args.metrics_out}")
    if args.spans_out:
        from repro.obs.export import write_spans_jsonl

        write_spans_jsonl(result["recorder"], args.spans_out)
        print(f"wrote {args.spans_out}")
    if args.analytics_out:
        from repro.bench.analytics import append_analytics, record_from_run

        recorder = result["recorder"]
        record = record_from_run(
            recorder.spans,
            recorder.events,
            solver=args.solver,
            timeout=args.timeout,
            context={"suite": "quick-bench"},
        )
        append_analytics(args.analytics_out, record)
        print(
            f"appended {len(record['nodes'])} node record(s) to "
            f"{args.analytics_out}"
        )
    if args.collapsed_out:
        from repro.obs.sampler import write_collapsed

        profile = result.get("profile")
        if profile is not None and profile.samples:
            write_collapsed(profile, args.collapsed_out)
            print(
                f"wrote {args.collapsed_out} "
                f"({profile.samples} stack samples)"
            )
        else:
            print(
                "warning: no stack samples collected; "
                f"{args.collapsed_out} not written"
            )
    if args.smt_corpus:
        print(f"wrote SMT query corpus into {args.smt_corpus}/")
    if args.min_solved is not None and summary["solved"] < args.min_solved:
        print(
            f"quick-bench gate FAILED: solved {summary['solved']} < "
            f"required {args.min_solved}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
