"""ASCII rendering of the paper's plot types.

The original figures are line/scatter plots; in a terminal-only pipeline we
render them as fixed-size character rasters: cactus plots (Figure 12/13) and
log-log scatter plots (Figures 14/16).  Purely cosmetic on top of
:mod:`repro.bench.report`'s data, but it makes `pytest benchmarks/ -s`
output genuinely figure-shaped.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

_MARKS = "ox+*#@%&"


def _log_scale(value: float, lo: float, hi: float, cells: int) -> int:
    """Map value in [lo, hi] to a cell index on a log axis."""
    value = max(value, lo)
    position = (math.log10(value) - math.log10(lo)) / (
        math.log10(hi) - math.log10(lo) or 1.0
    )
    return min(int(position * (cells - 1)), cells - 1)


def cactus_plot(
    series: Dict[str, List[float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Solved-count (x) versus per-benchmark time (y, log scale) per solver.

    ``series`` maps solver name to its ascending list of solve times
    (the Figure 13 data shape).
    """
    all_times = [t for times in series.values() for t in times if t > 0]
    if not all_times:
        return f"{title}\n(no solved benchmarks)"
    lo = max(min(all_times), 1e-3)
    hi = max(max(all_times), lo * 10)
    max_count = max(len(times) for times in series.values())
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (solver, times) in enumerate(sorted(series.items())):
        mark = _MARKS[index % len(_MARKS)]
        legend.append(f"{mark}={solver}")
        for count, t in enumerate(times, start=1):
            col = min(int((count / max(max_count, 1)) * (width - 1)), width - 1)
            row = height - 1 - _log_scale(max(t, lo), lo, hi, height)
            grid[row][col] = mark
    lines = [title] if title else []
    lines.append(f"time (log {lo:g}s..{hi:g}s)")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" solved count (0..{max_count})    {'  '.join(legend)}")
    return "\n".join(lines)


def scatter_plot(
    points: Sequence[Tuple[str, Optional[float], Optional[float]]],
    x_label: str,
    y_label: str,
    width: int = 40,
    height: int = 20,
    title: str = "",
) -> str:
    """Log-log scatter of paired solve times (the Figure 14/16 shape).

    Points with one side unsolved are pinned to the far edge of that axis
    (the paper plots them on the timeout border).
    """
    finite = [v for _, a, b in points for v in (a, b) if v is not None and v > 0]
    if not finite:
        return f"{title}\n(no data)"
    lo = max(min(finite), 1e-3)
    hi = max(max(finite), lo * 10)
    grid = [[" "] * width for _ in range(height)]
    # Diagonal reference line.
    for i in range(min(width, height)):
        col = int(i * (width - 1) / max(min(width, height) - 1, 1))
        row = height - 1 - int(i * (height - 1) / max(min(width, height) - 1, 1))
        if grid[row][col] == " ":
            grid[row][col] = "."
    for _, x_value, y_value in points:
        xv = x_value if x_value is not None else hi
        yv = y_value if y_value is not None else hi
        col = _log_scale(max(xv, lo), lo, hi, width)
        row = height - 1 - _log_scale(max(yv, lo), lo, hi, height)
        grid[row][col] = "o"
    lines = [title] if title else []
    lines.append(f"{y_label} (log, up)")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} (log, right); points above the diagonal favour x")
    return "\n".join(lines)
