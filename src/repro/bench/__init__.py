"""Benchmark suite, portfolio runner and report generators (Section 7).

The suite substitutes for the SyGuS-Comp 2019 archive: parameterised
families across the paper's three tracks (INV, CLIA, General) spanning the
same difficulty axes — solution height, number of spec conjuncts, number of
variables, and ad-hoc grammar operators.
"""

from repro.bench.suite import Benchmark, full_suite, suite_by_track
from repro.bench.runner import RunResult, SOLVER_NAMES, make_solver, run_suite
from repro.bench.quick_bench import demo_subset, run_quick_bench
from repro.bench import analytics, report

__all__ = [
    "Benchmark",
    "full_suite",
    "suite_by_track",
    "RunResult",
    "SOLVER_NAMES",
    "make_solver",
    "run_suite",
    "demo_subset",
    "run_quick_bench",
    "analytics",
    "report",
]
