"""Generate EXPERIMENTS.md: paper-versus-measured for every table and figure.

Usage::

    python -m repro.bench.make_report [--timeout SECONDS] [--output PATH]

Runs (or loads from cache) the full portfolio campaign and renders each of
the paper's evaluation artifacts — Figures 10 through 16 and Table 1 — as
text, next to the corresponding claim from the paper.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from typing import List, Sequence

from repro.bench import report
from repro.bench.runner import (
    DEFAULT_TIMEOUT,
    ResultsCache,
    RunResult,
    run_suite,
)
from repro.bench.suite import full_suite

_COMPETITORS = ("dryadsynth", "cegqi", "eusolver", "loopinvgen")


def _section(title: str, paper: str, body: str) -> str:
    return f"## {title}\n\n**Paper:** {paper}\n\n```\n{body}\n```\n"


def generate_report(results: Sequence[RunResult], timeout: float) -> str:
    suite = full_suite()
    competition = [r for r in results if r.solver in set(_COMPETITORS)]
    parts: List[str] = []
    parts.append(
        "# EXPERIMENTS — paper versus measured\n\n"
        "Reproduction campaign for *Reconciling Enumerative and Deductive "
        "Program Synthesis* (PLDI 2020).  The original evaluation ran 715 "
        "SyGuS-Comp 2019 benchmarks on StarExec 4-core nodes with a 30-minute "
        f"timeout; this campaign runs {len(suite)} generated benchmarks "
        f"spanning the same three tracks in-process with a {timeout:g}-second "
        "timeout on a pure-Python substrate.  Absolute times are therefore "
        "not comparable; the claims below are about *shapes* — who wins "
        "where, and by what kind of margin.  Regenerate with\n"
        "`python -m repro.bench.make_report` or `pytest benchmarks/ "
        "--benchmark-only`.\n"
    )

    # -- Figure 10 ------------------------------------------------------------
    fig10 = report.fig10_solved_by_track(results)
    parts.append(
        _section(
            "Figure 10 — solved benchmarks by track",
            "DryadSynth solved more benchmarks than all other solvers in all "
            "tracks (346/82/166 across INV/CLIA/General vs. e.g. CVC4's "
            "287/85/141).",
            report.render_solved_by_track(fig10, ""),
        )
    )

    # -- Figure 11 ------------------------------------------------------------
    fig11 = report.fig11_fastest_by_track(competition)
    parts.append(
        _section(
            "Figure 11 — fastest-solved benchmarks by track",
            "DryadSynth fastest-solved the most benchmarks in every track "
            "(pseudo-log bucket ties shared).",
            report.render_solved_by_track(fig11, ""),
        )
    )

    # -- Figure 12 ------------------------------------------------------------
    lines = []
    for track in ("INV", "CLIA", "General"):
        curves = report.fig12_time_vs_solved(results, track)
        lines.append(f"-- {track} --")
        for solver in _COMPETITORS:
            points = curves.get(solver) or []
            solved, total = (points[-1] if points else (0, 0.0))
            lines.append(f"  {solver:12s} solved={solved:3d} total={total:9.2f}s")
    parts.append(
        _section(
            "Figure 12 — total solving time vs number solved",
            "DryadSynth solved more CLIA and General benchmarks than all "
            "other solvers with less total time spent.",
            "\n".join(lines),
        )
    )

    # -- Figure 13 ------------------------------------------------------------
    lines = []
    for track in ("INV", "CLIA", "General"):
        series = report.fig13_times_ascending(results, track)
        lines.append(f"-- {track} --")
        for solver in _COMPETITORS:
            times = series.get(solver, [])
            med = statistics.median(times) if times else float("nan")
            p90 = times[int(0.9 * (len(times) - 1))] if times else float("nan")
            lines.append(
                f"  {solver:12s} n={len(times):3d} median={med:7.3f}s "
                f"p90={p90:7.3f}s"
            )
    parts.append(
        _section(
            "Figure 13 — per-benchmark time, ascending",
            "DryadSynth has a constant overhead on easy problems but its "
            "curve climbs more mildly toward challenging benchmarks — better "
            "scalability than all baselines.",
            "\n".join(lines),
        )
    )

    # -- Table 1 ---------------------------------------------------------------
    table1 = report.table1_solution_sizes(competition)
    lines = []
    for track, per_solver in table1.items():
        lines.append(f"-- {track} --")
        for solver, data in sorted(per_solver.items()):
            lines.append(
                f"  {solver:12s} smallest={data['smallest']:3d} "
                f"median_size={data['median_size']:6.1f} "
                f"(over {data['common']} common benchmarks)"
            )
    parts.append(
        _section(
            "Table 1 — smallest solutions and median size",
            "EUSolver produces the smallest solutions (pure enumeration); "
            "CVC4 the largest (ite cascades, median 361 on CLIA); DryadSynth "
            "slightly better than CVC4 but worse than EUSolver.",
            "\n".join(lines),
        )
    )

    # -- Figure 14 ---------------------------------------------------------------
    points = report.fig14_coop_vs_enum(results)
    coop_only = sum(1 for _, c, e in points if c is not None and e is None)
    enum_only = sum(1 for _, c, e in points if c is None and e is not None)
    both = [(c, e) for _, c, e in points if c is not None and e is not None]
    coop_wins = sum(1 for c, e in both if c <= e)
    parts.append(
        _section(
            "Figure 14 — cooperative vs plain height enumeration",
            "Cooperative synthesis clearly outperformed plain height-based "
            "enumeration for the vast majority of benchmarks; enumeration was "
            "slightly better only on several easy problems.",
            (
                f"solved by cooperative only : {coop_only}\n"
                f"solved by enumeration only : {enum_only}\n"
                f"solved by both             : {len(both)} "
                f"(cooperative faster or equal on {coop_wins})"
            ),
        )
    )

    # -- Figure 15 ---------------------------------------------------------------
    fig15 = report.fig15_deduction_ablation(results)
    ded = sum(c["deduct"] for c in fig15.values())
    extra = sum(c["coop_extra"] for c in fig15.values())
    lines = [
        f"  {track:8s} deduction={c['deduct']:3d} "
        f"enumeration-extra={c['coop_extra']:3d}"
        for track, c in fig15.items()
    ]
    share = 100.0 * ded / max(ded + extra, 1)
    lines.append(f"  deduction share: {ded}/{ded + extra} = {share:.1f}%")
    parts.append(
        _section(
            "Figure 15 — plain deduction vs cooperative",
            "Only 32.6% of the benchmarks solved by cooperative synthesis "
            "were solved by pure divide-and-conquer deduction; the rest "
            "needed the height-based enumeration.",
            "\n".join(lines),
        )
    )

    # -- Figure 16 ---------------------------------------------------------------
    points16 = report.fig16_euback_comparison(results)
    vanilla = sum(1 for _, v, _e in points16 if v is not None)
    euback = sum(1 for _, _v, e in points16 if e is not None)
    both16 = [(v, e) for _, v, e in points16 if v is not None and e is not None]
    vwins = sum(1 for v, e in both16 if v <= e)
    parts.append(
        _section(
            "Figure 16 — vanilla vs EUSolver-backed DryadSynth",
            "Vanilla DryadSynth consistently performed better and solved 135 "
            "more benchmarks than the EUSolver-backed variant (on the 496 "
            "benchmarks not solved by pure deduction).",
            (
                f"benchmarks compared (not deduction-solved): {len(points16)}\n"
                f"vanilla solved : {vanilla}\n"
                f"euback solved  : {euback}\n"
                f"both solved    : {len(both16)} (vanilla faster or equal on "
                f"{vwins})"
            ),
        )
    )

    # -- Unique solves --------------------------------------------------------------
    uniques = report.unique_solves(competition)
    lines = [
        f"  {solver:12s} {len(benches):3d}  {', '.join(benches)}"
        for solver, benches in sorted(uniques.items())
    ]
    parts.append(
        _section(
            "Uniquely solved benchmarks",
            "58 of 715 benchmarks were solved only by DryadSynth; LoopInvGen "
            "had 9 unique solves.",
            "\n".join(lines) if lines else "  (none)",
        )
    )

    # -- Virtual best solver ---------------------------------------------------------
    from repro.synth.portfolio import vbs_summary

    vbs = vbs_summary(competition)
    parts.append(
        _section(
            "Virtual best solver (competition-style ceiling)",
            "SyGuS-Comp reports quote the per-benchmark best of all "
            "entrants as the portfolio ceiling; DryadSynth's margin over "
            "the VBS-minus-DryadSynth gap is what 'solved uniquely' "
            "measures.",
            (
                f"VBS solves {vbs['solved']}/{vbs['total']} "
                f"in {vbs['total_time']}s total\n"
                f"contributions (fastest-solver counts): {vbs['contributions']}"
            ),
        )
    )

    parts.append(
        "## Deviations and notes\n\n"
        "- **Every headline ordering reproduces**: the cooperative solver "
        "leads every track on solved counts and fastest-solved counts, "
        "plain enumeration solves a strict subset of what cooperation "
        "solves, the EUSolver-backed hybrid solves fewer benchmarks than "
        "the native fixed-height engine, EUSolver's solutions are the "
        "smallest, and LoopInvGen competes only on INV.\n"
        "- **Figure 15's deduction share is higher here** than the paper's "
        "32.6%: the generated suite has a larger fraction of "
        "merging-rule-friendly conjunctive CLIA specs and "
        "loop-summarisable INV instances than SyGuS-Comp 2019 did.  The "
        "qualitative claim — deduction alone leaves a large remainder that "
        "only the enumerative engine closes — holds in every track.\n"
        "- **Figure 16 nuance**: vanilla DryadSynth dominates on *count* "
        "(as in the paper), but on the easy shared benchmarks the "
        "EUSolver-backed variant is often faster in absolute terms — "
        "bottom-up enumeration finds size-3 solutions quicker than a "
        "symbolic encoding round-trips through the pure-Python SMT stack.\n"
        "- **Known-hard instances**: the paper's running example max3 in "
        "the qm grammar (Example 2.12) is not solved within the short "
        "campaign timeout on this substrate (its subproblems solve in "
        "under a second; the Type-B search at operator depth 2 needs "
        "minutes of pure-Python SMT where the original had Z3 on 4 "
        "cores).  `examples/custom_grammar.py --max3` runs it with a "
        "20-minute budget.\n"
    )
    return "\n".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT)
    parser.add_argument("--output", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    start = time.time()
    results = run_suite(timeout=args.timeout, cache=ResultsCache())
    text = generate_report(results, args.timeout)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({time.time() - start:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
