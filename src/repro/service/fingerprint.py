"""Normalized problem fingerprints for the persistent result cache.

Two textually different ``.sl`` files describing the same problem (modulo
whitespace, comments, command order quirks the parser normalizes away) get
the same fingerprint: the text is parsed and re-serialized through
:mod:`repro.sygus.serializer`, which yields one canonical s-expression per
problem (constraints, grammar, declarations, in fixed order).  The solver
name and the full :class:`~repro.synth.config.SynthConfig` are hashed in
because they change the outcome, not just the presentation.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict
from typing import Optional, Union

from repro.synth.config import SynthConfig

#: Bump when result semantics change; cache entries from other versions are
#: ignored (see :mod:`repro.service.cache`).
FINGERPRINT_VERSION = 1


def canonical_config(config: Optional[SynthConfig]) -> str:
    """A stable one-line rendering of a config's semantic content."""
    if config is None:
        config = SynthConfig()
    items = sorted(asdict(config).items())
    return " ".join(f"{key}={value!r}" for key, value in items)


def canonical_problem_text(problem_or_text) -> str:
    """Parse-and-reprint normalization of a problem.

    Accepts SyGuS-IF text, a :class:`~repro.sygus.problem.SygusProblem` or a
    :class:`~repro.sygus.multi.MultiSygusProblem`.  Unparsable text falls
    back to whitespace normalization, so fingerprinting never fails.
    """
    from repro.sygus.multi import MultiSygusProblem
    from repro.sygus.problem import SygusProblem
    from repro.sygus.serializer import multi_problem_to_sygus, problem_to_sygus

    if isinstance(problem_or_text, MultiSygusProblem):
        return multi_problem_to_sygus(problem_or_text)
    if isinstance(problem_or_text, SygusProblem):
        return problem_to_sygus(problem_or_text)
    text = str(problem_or_text)
    try:
        from repro.sygus.parser import parse_sygus_text

        problem = parse_sygus_text(text)
    except Exception:  # noqa: BLE001 - fingerprinting must not fail
        return " ".join(text.split())
    if isinstance(problem, MultiSygusProblem):
        return multi_problem_to_sygus(problem)
    return problem_to_sygus(problem)


def problem_fingerprint(
    problem_or_text,
    solver: str = "",
    config: Optional[SynthConfig] = None,
) -> str:
    """SHA-256 fingerprint of (canonical problem, solver, config)."""
    payload = "\n".join(
        (
            f"repro-fingerprint/{FINGERPRINT_VERSION}",
            canonical_problem_text(problem_or_text),
            f"solver={solver}",
            f"config={canonical_config(config)}",
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
