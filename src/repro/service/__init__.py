"""Process-parallel synthesis job engine.

The service layer turns the in-process solvers into a batch/portfolio
engine: a :class:`SynthesisJob` describes one solver run over one problem,
a :class:`WorkerPool` executes jobs on OS processes (hard deadlines, crash
isolation, retry, first-finisher-wins races), and a :class:`ResultCache`
persists :class:`JobResult` records keyed by a normalized problem
fingerprint.  Solutions cross the process boundary as serialized SyGuS
text, never as live :class:`~repro.lang.ast.Term` objects.
"""

from repro.service.cache import ResultCache
from repro.service.fingerprint import (
    canonical_config,
    canonical_problem_text,
    problem_fingerprint,
)
from repro.service.jobs import (
    CANCELLED,
    CRASHED,
    SOLVED,
    TIMEOUT,
    UNSOLVED,
    JobResult,
    SynthesisJob,
    execute_job,
    parse_solution_text,
)
from repro.service.pool import WorkerPool

__all__ = [
    "CANCELLED",
    "CRASHED",
    "SOLVED",
    "TIMEOUT",
    "UNSOLVED",
    "JobResult",
    "ResultCache",
    "SynthesisJob",
    "WorkerPool",
    "canonical_config",
    "canonical_problem_text",
    "execute_job",
    "parse_solution_text",
    "problem_fingerprint",
]
