"""A crash-tolerant multiprocessing worker pool for synthesis jobs.

Design constraints (why this is not ``concurrent.futures``):

- **Workers are survivable, not trusted.**  A synthesis run may hang, blow
  past its budget, or die (stack overflow, OOM kill).  The parent owns every
  job's hard deadline, detects dead workers by process liveness (not by pipe
  EOF alone), terminates and respawns on overrun, and retries each failed
  job once (configurable) before recording a ``crashed``/``timeout`` result.
  ``ProcessPoolExecutor`` instead marks the whole pool broken on one lost
  worker and offers no per-job deadline.
- **First-finisher-wins races.**  :meth:`WorkerPool.race` runs several jobs
  for the *same* logical question (portfolio members, height workers) and
  terminates the losers the moment one solves — the paper's Section 5.1
  semantics, but across processes instead of GIL-bound threads.
- **Streaming submission.**  The scheduler is a long-lived service thread;
  :meth:`WorkerPool.submit` hands it one job at a time and returns a
  :class:`PoolTicket` immediately, which is what a long-lived daemon
  (:mod:`repro.serve`) needs.  :meth:`run` and :meth:`race` are thin batch
  conveniences on top of the same core, so the CLI batch path and the
  service path exercise identical scheduling code.
- **Warm workers.**  Worker processes persist across jobs *and* across
  ``run()``/``submit()`` calls until :meth:`close`; a daemon that keeps one
  pool alive amortizes interpreter start-up and module imports over its
  whole lifetime instead of respawning per job.
- **Bounded queue + fingerprint cache.**  ``queue_size`` is the advertised
  admission bound (:meth:`saturated` — the daemon's backpressure signal),
  and a :class:`~repro.service.cache.ResultCache` short-circuits jobs whose
  fingerprint already has a terminal result.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import threading
import time
from collections import deque
from multiprocessing.connection import wait as _conn_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs.log import jlog
from repro.service.cache import ResultCache

logger = logging.getLogger(__name__)
from repro.service.jobs import (
    CANCELLED,
    CRASHED,
    OOM_BUDGET,
    SOLVED,
    TIMEOUT,
    JobResult,
    SynthesisJob,
    execute_job,
)

ProgressFn = Callable[[JobResult], None]

#: Default cap on the live ``/jobs`` view: completed entries beyond this are
#: evicted oldest-first so a long-lived daemon never leaks job state.
DEFAULT_LIVE_CAP = 10_000


class PoolError(RuntimeError):
    """The pool was used after :meth:`WorkerPool.close`."""


def _worker_main(conn) -> None:
    """Worker loop: receive a job, run it, send the result, repeat.

    ``None`` is the shutdown sentinel.  ``execute_job`` never raises, so the
    only ways a worker stops replying are a hard crash or a hang — both are
    the parent's responsibility.
    """
    from repro.obs.log import reset_after_fork

    # Under ``fork`` the parent is multi-threaded (pool scheduler, daemon
    # dispatcher, HTTP threads); inherited handler streams may carry locks
    # another thread held at fork time, deadlocking this worker's first
    # log flush.  Rebuild logging before anything below can emit.
    reset_after_fork()
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if job is None:
            return
        try:
            conn.send(execute_job(job))
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One worker process plus its parent-side pipe end and assignment."""

    __slots__ = ("process", "conn", "slot", "assigned_at", "deadline",
                 "jobs_done", "last_rss")

    def __init__(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.slot: Optional["PoolTicket"] = None
        self.assigned_at = 0.0
        self.deadline: Optional[float] = None
        #: Jobs this process has executed — the warm-reuse evidence the
        #: daemon's ``/v1/stats`` reports (spawns ≪ jobs when reuse works).
        self.jobs_done = 0
        #: Latest parent-side RSS reading (bytes) from the scheduler's
        #: resource poll; feeds the per-worker gauges, ``/v1/stats`` and
        #: the kill-cause record an over-budget termination journals.
        self.last_rss: Optional[int] = None

    @property
    def busy(self) -> bool:
        return self.slot is not None

    def assign(self, ticket: "PoolTicket") -> None:
        self.conn.send(ticket.job)
        self.slot = ticket
        self.assigned_at = time.monotonic()
        hard = ticket.job.effective_hard_timeout
        self.deadline = self.assigned_at + hard if hard is not None else None

    def clear(self) -> None:
        self.slot = None
        self.deadline = None

    def stop(self, grace: float = 1.0) -> None:
        """Terminate the process (escalating to SIGKILL) and close the pipe."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(grace)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(grace)
        self.conn.close()


class RaceGroup:
    """Shared token linking racers: the first solve cancels the rest."""

    __slots__ = ("won",)

    def __init__(self) -> None:
        self.won = False


class PoolTicket:
    """Handle for one submitted job; completed by the scheduler thread."""

    __slots__ = (
        "job", "group", "on_complete", "on_assign", "attempts", "failures",
        "postmortem", "submitted_at", "queue_wait", "result", "cancelled",
        "cache_checked", "_done",
    )

    def __init__(
        self,
        job: SynthesisJob,
        group: Optional[RaceGroup] = None,
        on_complete: Optional[ProgressFn] = None,
        on_assign: Optional[Callable[[SynthesisJob], None]] = None,
    ) -> None:
        self.job = job
        self.group = group
        self.on_complete = on_complete
        self.on_assign = on_assign
        self.attempts = 0
        self.failures: List[str] = []
        self.postmortem: Optional[Dict] = None
        self.submitted_at = time.monotonic()
        self.queue_wait = 0.0
        self.result: Optional[JobResult] = None
        #: Set (by the owner, e.g. the daemon shedding load) to cancel the
        #: ticket before assignment; the scheduler turns it into a
        #: ``cancelled`` result at admission time.
        self.cancelled = False
        self.cache_checked = False
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> Optional[JobResult]:
        """Block until the job completes; returns the result (or ``None``)."""
        self._done.wait(timeout)
        return self.result


class WorkerPool:
    """Process pool executing :class:`SynthesisJob`\\ s with hard deadlines.

    Usable as a context manager; :meth:`submit`, :meth:`run` and
    :meth:`race` may be called repeatedly (from any thread) until
    :meth:`close`.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        max_retries: int = 1,
        queue_size: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        start_method: Optional[str] = None,
        poll_interval: float = 0.05,
        flight_dir: Optional[str] = None,
        live_cap: int = DEFAULT_LIVE_CAP,
        live_ttl: Optional[float] = None,
        merge_telemetry: bool = True,
        max_rss_mb: Optional[float] = None,
        rss_poll_interval: float = 0.25,
    ) -> None:
        self.size = max(1, workers if workers is not None else (os.cpu_count() or 1))
        self.max_retries = max(0, max_retries)
        self.queue_size = queue_size if queue_size is not None else 2 * self.size
        self.cache = cache
        self.poll_interval = poll_interval
        #: Soft per-worker RSS budget (MiB).  The scheduler polls every
        #: busy worker's resident set alongside its deadline checks; a
        #: worker over budget is terminated and its job completes as
        #: ``oom_budget`` (with a postmortem) — never a pool crash.  RSS
        #: gauges are published regardless; the budget only arms the kill.
        self.max_rss_mb = max_rss_mb
        self.rss_poll_interval = max(0.05, rss_poll_interval)
        self._last_rss_poll = 0.0
        #: When set, every assignment gets a per-attempt flight-recorder
        #: journal here (see :mod:`repro.obs.flight`); journals of cleanly
        #: completed attempts are removed, crashed/hung ones are kept and
        #: recovered into ``JobResult.postmortem``.
        self.flight_dir = flight_dir
        if flight_dir is not None:
            os.makedirs(flight_dir, exist_ok=True)
        #: Live per-job state for the ``/jobs`` telemetry endpoint, keyed by
        #: job id.  Mutated by the scheduler thread, snapshotted by the HTTP
        #: server thread — hence the lock.  Completed entries are evicted
        #: beyond ``live_cap`` (oldest first) and past ``live_ttl`` seconds,
        #: so a long-lived daemon keeps a bounded recent-history view
        #: instead of accumulating every job it ever ran.
        self.live_cap = max(1, live_cap)
        self.live_ttl = live_ttl
        #: Whether completions fold worker telemetry into the ambient
        #: recorder here.  The serving daemon turns this off and performs
        #: the merge itself, re-rooting each worker tree under its own
        #: request span (merging in both places would duplicate every span).
        self.merge_telemetry = merge_telemetry
        self._live: Dict[str, Dict] = {}
        self._live_lock = threading.Lock()
        method = start_method or os.environ.get("REPRO_SERVICE_START_METHOD")
        if method is None:
            # fork is markedly cheaper where available; jobs carry only text
            # and plain dataclasses, so either start method is correct.
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(method)
        self._workers: List[_Worker] = []
        self._closed = False
        self._job_seq = 0
        #: Cumulative counters backing the daemon's warm-reuse statistics.
        self.workers_spawned = 0
        self.jobs_dispatched = 0
        # Submission plumbing: tickets flow through ``_inbox`` to the
        # scheduler thread; ``_wake_w`` interrupts its connection poll so a
        # submit is picked up immediately instead of after ``poll_interval``.
        self._inbox: deque = deque()
        self._cond = threading.Condition()
        self._service: Optional[threading.Thread] = None
        self._stopping = False
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)

    # -- Introspection ----------------------------------------------------------

    def worker_pids(self) -> List[int]:
        return [
            w.process.pid
            for w in self._workers
            if w.process.pid is not None and w.process.is_alive()
        ]

    def backlog(self) -> int:
        """Jobs admitted but not yet completed (queued + running)."""
        with self._cond:
            queued = len(self._inbox)
        return queued + sum(1 for w in self._workers if w.busy)

    @property
    def saturated(self) -> bool:
        """Whether the bounded queue is full (the backpressure signal)."""
        return self.backlog() >= self.queue_size

    def pool_stats(self) -> Dict:
        """Warm-reuse and dispatch counters for the daemon's ``/v1/stats``."""
        return {
            "workers": self.size,
            "workers_alive": len(self.worker_pids()),
            "workers_spawned": self.workers_spawned,
            "jobs_dispatched": self.jobs_dispatched,
            "backlog": self.backlog(),
            "queue_size": self.queue_size,
            "max_rss_mb": self.max_rss_mb,
            "worker_rss_bytes": {
                str(w.process.pid): w.last_rss
                for w in self._workers
                if w.process.pid is not None and w.last_rss is not None
            },
        }

    # -- Live job view (the `/jobs` telemetry endpoint's provider) --------------

    def jobs_snapshot(self) -> List[Dict]:
        """Thread-safe snapshot of every tracked job's live state.

        Each entry: ``job_id``, ``name``, ``solver``, ``state`` (``queued`` /
        ``running`` / ``retrying`` / ``done``), final ``status`` when done,
        ``attempts``, ``queue_wait``, and — while running — the assigned
        ``worker_pid``, ``running_for`` and ``deadline_in`` seconds.
        """
        now = time.monotonic()
        with self._live_lock:
            states = [dict(state) for state in self._live.values()]
        for state in states:
            deadline = state.pop("_deadline", None)
            assigned_at = state.pop("_assigned_at", None)
            state.pop("_done_at", None)
            running = state.get("state") == "running"
            state["deadline_in"] = (
                round(deadline - now, 3) if running and deadline is not None
                else None
            )
            state["running_for"] = (
                round(now - assigned_at, 3)
                if running and assigned_at is not None
                else None
            )
        return states

    def _live_update(self, job: SynthesisJob, **fields) -> None:
        with self._live_lock:
            state = self._live.get(job.job_id)
            if state is None:
                self._evict_live_locked(time.monotonic())
                state = self._live[job.job_id] = {
                    "job_id": job.job_id,
                    "name": job.name,
                    "solver": job.solver,
                    "state": "queued",
                    "status": None,
                    "attempts": 0,
                    "queue_wait": None,
                    "worker_pid": None,
                }
            state.update(fields)
            # A batch submitted up front inserts every entry as "queued"
            # before anything completes, so eviction must also run on the
            # done transition — not only on insert — for the view to stay
            # bounded while jobs finish.
            if "_done_at" in fields:
                self._evict_live_locked(time.monotonic())

    def _evict_live_locked(self, now: float) -> None:
        """Bound the live view: TTL-expire and cap completed entries."""
        if self.live_ttl is not None:
            expired = [
                key for key, state in self._live.items()
                if state.get("state") == "done"
                and now - state.get("_done_at", now) > self.live_ttl
            ]
            for key in expired:
                del self._live[key]
        overflow = len(self._live) + 1 - self.live_cap
        if overflow > 0:
            done = [key for key, state in self._live.items()
                    if state.get("state") == "done"]
            for key in done[:overflow]:
                del self._live[key]

    # -- Public API -------------------------------------------------------------

    def submit(
        self,
        job: SynthesisJob,
        on_complete: Optional[ProgressFn] = None,
        group: Optional[RaceGroup] = None,
        on_assign: Optional[Callable[[SynthesisJob], None]] = None,
    ) -> PoolTicket:
        """Queue one job and return a ticket; never blocks on execution.

        ``on_complete`` (and ``on_assign``) run on the scheduler thread with
        no pool locks held, so they may call back into the pool.  Jobs in
        the same :class:`RaceGroup` race: the first ``solved`` result
        cancels the rest.
        """
        if self._closed:
            raise PoolError("pool is closed")
        with self._cond:
            if not job.job_id:
                self._job_seq += 1
                job.job_id = f"job-{self._job_seq}"
            ticket = PoolTicket(job, group=group, on_complete=on_complete,
                                on_assign=on_assign)
            self._inbox.append(ticket)
            self._ensure_service_locked()
            self._cond.notify_all()
        self._live_update(job)
        self._wake()
        return ticket

    def run(
        self,
        jobs: Sequence[SynthesisJob],
        progress: Optional[ProgressFn] = None,
    ) -> List[JobResult]:
        """Execute every job; results come back in submission order."""
        tickets = [self.submit(job, on_complete=progress) for job in jobs]
        return self._wait_all(tickets)

    def race(
        self,
        jobs: Sequence[SynthesisJob],
        progress: Optional[ProgressFn] = None,
    ) -> Tuple[Optional[JobResult], List[JobResult]]:
        """First-finisher-wins: stop (and cancel losers) on the first solve.

        Returns ``(winner, results)``; ``winner`` is ``None`` when nobody
        solved.  Losing racers get ``cancelled`` results.
        """
        group = RaceGroup()
        tickets = [
            self.submit(job, on_complete=progress, group=group) for job in jobs
        ]
        results = self._wait_all(tickets)
        winner = next((r for r in results if r.status == SOLVED), None)
        return winner, results

    def close(self) -> None:
        """Shut down: cancel queued work, stop the scheduler, reap workers."""
        with self._cond:
            self._closed = True
            self._stopping = True
            self._cond.notify_all()
        self._wake()
        if self._service is not None:
            self._service.join(timeout=30.0)
            self._service = None
        if self._wake_r is not None:
            for fd in (self._wake_r, self._wake_w):
                try:
                    os.close(fd)
                except OSError:
                    pass
            self._wake_r = self._wake_w = None
        for worker in self._workers:
            if not worker.busy:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._workers:
            if worker.busy:
                worker.stop()
            else:
                worker.process.join(1.0)
                if worker.process.is_alive():
                    worker.stop()
                else:
                    worker.conn.close()
        self._workers = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- Waiting ----------------------------------------------------------------

    def _wait_all(self, tickets: List[PoolTicket]) -> List[JobResult]:
        results: List[JobResult] = []
        for ticket in tickets:
            while not ticket._done.wait(timeout=0.5):
                service = self._service
                if service is None or not service.is_alive():
                    raise PoolError(
                        "pool scheduler died with jobs outstanding"
                    )
        for ticket in tickets:
            assert ticket.result is not None
            results.append(ticket.result)
        return results

    # -- Scheduler (everything below runs on the service thread) ----------------

    def _ensure_service_locked(self) -> None:
        if self._service is None or not self._service.is_alive():
            self._service = threading.Thread(
                target=self._service_loop,
                name="repro-pool-scheduler",
                daemon=True,
            )
            self._service.start()

    def _wake(self) -> None:
        if self._wake_w is None:
            return
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _drain_wake_pipe(self) -> None:
        if self._wake_r is None:
            return
        try:
            os.read(self._wake_r, 4096)
        except (BlockingIOError, OSError):
            pass

    def _service_loop(self) -> None:
        try:
            while True:
                if self._stopping:
                    self._shutdown_pending()
                    return
                self._admit()
                registry = obs.metrics()
                registry.gauge("pool.workers_alive").set(len(self._workers))
                with self._cond:
                    queued = len(self._inbox)
                registry.gauge("pool.jobs_queued").set(float(queued))
                busy = [w for w in self._workers if w.busy]
                registry.gauge("pool.jobs_running").set(float(len(busy)))
                if not busy:
                    with self._cond:
                        if not self._inbox and not self._stopping:
                            self._cond.wait(timeout=self.poll_interval)
                    self._drain_wake_pipe()
                    continue
                ready = _conn_wait(
                    [w.conn for w in busy] + [self._wake_r],
                    timeout=self.poll_interval,
                )
                if self._wake_r in ready:
                    self._drain_wake_pipe()
                now = time.monotonic()
                if now - self._last_rss_poll >= self.rss_poll_interval:
                    self._last_rss_poll = now
                    self._poll_worker_rss(registry)
                for worker in busy:
                    if not worker.busy:
                        continue
                    if worker.conn in ready:
                        self._collect(worker)
                    elif not worker.process.is_alive():
                        self._fail_attempt(
                            worker,
                            "crashed: worker exited with code "
                            f"{worker.process.exitcode}",
                            CRASHED,
                        )
                    elif worker.deadline is not None and now > worker.deadline:
                        self._fail_attempt(
                            worker,
                            "timeout: exceeded hard deadline of "
                            f"{job_hard_timeout(worker):.3g}s",
                            TIMEOUT,
                        )
        except Exception:  # noqa: BLE001 - scheduler must not die silently
            logger.exception("pool scheduler crashed")
            raise

    def _admit(self) -> None:
        """Drain the inbox: cancellations, cache hits, then assignments."""
        while True:
            with self._cond:
                if not self._inbox:
                    return
                ticket = self._inbox.popleft()
            if ticket.cancelled or (ticket.group is not None
                                    and ticket.group.won):
                self._complete_cancelled(ticket)
                continue
            if (not ticket.cache_checked and ticket.attempts == 0
                    and self.cache is not None):
                ticket.cache_checked = True
                hit = self.cache.get(ticket.job.fingerprint())
                if hit is not None:
                    job = ticket.job
                    result = JobResult.from_json(hit.to_json())
                    result.job_id = job.job_id
                    result.name = job.name
                    result.from_cache = True
                    # A cached record's telemetry describes the original
                    # run, not this one: don't re-merge it.
                    result.telemetry = None
                    ticket.queue_wait = time.monotonic() - ticket.submitted_at
                    self._complete(ticket, result)
                    continue
            worker = self._idle_worker()
            if worker is None:
                with self._cond:
                    self._inbox.appendleft(ticket)
                return
            self._assign(worker, ticket)

    def _assign(self, worker: _Worker, ticket: PoolTicket) -> None:
        job = ticket.job
        ticket.attempts += 1
        if self.flight_dir is not None:
            job.flight_journal = os.path.join(
                self.flight_dir,
                f"{_safe_name(job.job_id)}"
                f"-attempt{ticket.attempts}.flight.jsonl",
            )
        worker.assign(ticket)
        self.jobs_dispatched += 1
        ticket.queue_wait = worker.assigned_at - ticket.submitted_at
        self._live_update(
            job, state="running", attempts=ticket.attempts,
            worker_pid=worker.process.pid,
            queue_wait=round(ticket.queue_wait, 4),
            _deadline=worker.deadline,
            _assigned_at=worker.assigned_at,
        )
        jlog(
            logger, "job.assigned",
            job_id=job.job_id, problem=job.name,
            worker_pid=worker.process.pid, attempt=ticket.attempts,
        )
        if ticket.on_assign is not None:
            ticket.on_assign(job)

    def _collect(self, worker: _Worker) -> None:
        """A busy worker's pipe is readable: reap its result (or its death)."""
        try:
            result = worker.conn.recv()
        except (EOFError, OSError):
            self._fail_attempt(
                worker, "crashed: worker pipe closed mid-job", CRASHED
            )
            return
        ticket = worker.slot
        assert ticket is not None
        worker.clear()
        worker.jobs_done += 1
        job = ticket.job
        if result.status == CRASHED:
            # In-process failure: the worker survives, the job is retried
            # like any other crash.  Its journal stays on disk and feeds
            # the post-mortem.
            ticket.failures.append(f"crashed: {result.error}")
            self._recover_postmortem(ticket)
            if ticket.attempts <= self.max_retries:
                self._live_update(job, state="retrying", worker_pid=None)
                with self._cond:
                    self._inbox.appendleft(ticket)
            else:
                self._complete(ticket, result)
        else:
            # Clean completion: the flight journal served its purpose and
            # would only accumulate on disk.
            if job.flight_journal:
                try:
                    os.unlink(job.flight_journal)
                except OSError:
                    pass
            self._complete(ticket, result)

    def _poll_worker_rss(self, registry) -> None:
        """Resource poll: per-worker RSS gauges plus the soft-budget kill.

        Runs on the scheduler thread alongside deadline enforcement.  Every
        live worker's resident set is read from ``/proc`` and published as a
        per-slot gauge (slot index, not pid, so the metric set stays
        bounded across respawns); busy workers over ``max_rss_mb`` are
        terminated through the same :meth:`_fail_attempt` path a deadline
        overrun takes — the job completes as ``oom_budget``, never a pool
        crash.
        """
        from repro.obs import rusage

        budget_bytes = (
            self.max_rss_mb * 1024 * 1024
            if self.max_rss_mb is not None else None
        )
        over_budget: List[_Worker] = []
        for index, worker in enumerate(list(self._workers)):
            pid = worker.process.pid
            if pid is None or not worker.process.is_alive():
                continue
            rss = rusage.process_rss_bytes(pid)
            if rss is None:
                continue
            worker.last_rss = rss
            registry.gauge(f"pool.worker.{index}.rss_bytes").set(float(rss))
            registry.gauge("pool.peak_rss_bytes").set_max(float(rss))
            if budget_bytes is not None and worker.busy and rss > budget_bytes:
                over_budget.append(worker)
        children_peak = rusage.children_peak_rss_bytes()
        if children_peak:
            registry.gauge("pool.children_peak_rss_bytes").set_max(
                float(children_peak)
            )
        for worker in over_budget:
            if not worker.busy:
                continue  # completed between collection and kill
            rss_mb = (worker.last_rss or 0) / (1024 * 1024)
            registry.counter("pool.oom_budget_kills").inc()
            self._fail_attempt(
                worker,
                f"oom_budget: worker rss {rss_mb:.0f}MB exceeded "
                f"--max-rss-mb {self.max_rss_mb:g}",
                OOM_BUDGET,
            )

    def _fail_attempt(self, worker: _Worker, reason: str, status: str) -> None:
        """A worker crashed/hung on its job: retire it, retry or record."""
        ticket = worker.slot
        assert ticket is not None
        job = ticket.job
        elapsed = time.monotonic() - worker.assigned_at
        worker.clear()
        self._retire(worker)
        self._journal_kill(worker, job, reason, status)
        ticket.failures.append(reason)
        self._recover_postmortem(ticket)
        will_retry = ticket.attempts <= self.max_retries
        jlog(
            logger, "job.attempt_failed",
            job_id=job.job_id, problem=job.name, reason=reason,
            attempt=ticket.attempts, will_retry=will_retry,
            postmortem=ticket.postmortem is not None,
        )
        if will_retry:
            self._live_update(job, state="retrying", worker_pid=None)
            with self._cond:
                self._inbox.appendleft(ticket)
            return
        self._complete(
            ticket,
            JobResult(
                job.job_id, job.name, job.solver, status,
                wall_time=round(elapsed, 4), error=reason,
            ),
        )

    def _journal_kill(self, worker: _Worker, job: SynthesisJob,
                      reason: str, status: str) -> None:
        """Append the kill cause to the dead worker's flight journal.

        The worker can no longer write (it has just been retired), so the
        parent appends one ``{"kill": ...}`` record naming *why* it died —
        deadline overrun, RSS-budget kill, or a crash of the worker's own
        making — plus the terminating signal (from the negative exitcode)
        and the scheduler's last RSS reading.  ``dryadsynth postmortem``
        renders the three causes distinctly.
        """
        if not job.flight_journal:
            return
        from repro.obs import flight

        if status == OOM_BUDGET:
            cause = "oom_budget"
        elif status == TIMEOUT:
            cause = "deadline"
        else:
            cause = "crash"
        exitcode = worker.process.exitcode
        signal_name = None
        if exitcode is not None and exitcode < 0:
            import signal as _signal

            try:
                signal_name = _signal.Signals(-exitcode).name
            except ValueError:
                signal_name = f"signal {-exitcode}"
        flight.append_kill_record(
            job.flight_journal,
            cause=cause,
            reason=reason,
            signal=signal_name,
            exitcode=exitcode,
            last_rss_bytes=worker.last_rss,
        )

    def _recover_postmortem(self, ticket: PoolTicket) -> None:
        """Salvage the flight journal a failed attempt left behind."""
        if not ticket.job.flight_journal:
            return
        from repro.obs.flight import read_postmortem

        postmortem = read_postmortem(ticket.job.flight_journal)
        if postmortem is not None:
            ticket.postmortem = postmortem
            obs.metrics().counter("pool.postmortems_recovered").inc()

    def _complete(self, ticket: PoolTicket, result: JobResult) -> None:
        job = ticket.job
        result.attempts = ticket.attempts or result.attempts
        result.failures = ticket.failures or result.failures
        result.queue_wait = round(ticket.queue_wait, 4)
        if result.postmortem is None and ticket.postmortem is not None:
            result.postmortem = ticket.postmortem
        self._live_update(
            job, state="done", status=result.status, worker_pid=None,
            queue_wait=result.queue_wait, _done_at=time.monotonic(),
        )
        jlog(
            logger, "job.completed",
            job_id=job.job_id, problem=job.name, status=result.status,
            wall=round(result.wall_time, 4),
            queue_wait=result.queue_wait,
            attempts=result.attempts, from_cache=result.from_cache,
        )
        if self.cache is not None and not result.from_cache:
            self.cache.put(job.fingerprint(), result)
        registry = obs.metrics()
        registry.counter("pool.jobs_completed").inc()
        registry.counter(f"pool.status.{result.status}").inc()
        registry.histogram("pool.queue_wait_seconds").observe(
            result.queue_wait
        )
        if (self.merge_telemetry and result.telemetry is not None
                and not result.from_cache):
            obs.merge_job_telemetry(
                result.telemetry,
                name=result.name,
                status=result.status,
                wall_time=result.wall_time,
            )
        self._finish(ticket, result)
        if (ticket.group is not None and result.status == SOLVED
                and not ticket.group.won):
            ticket.group.won = True
            self._cancel_group(ticket.group)

    def _complete_cancelled(self, ticket: PoolTicket) -> None:
        job = ticket.job
        result = _cancelled(job)
        result.queue_wait = round(ticket.queue_wait, 4)
        self._live_update(job, state="done", status=CANCELLED,
                          worker_pid=None, _done_at=time.monotonic())
        self._finish(ticket, result)

    def _finish(self, ticket: PoolTicket, result: JobResult) -> None:
        """Publish the result (no locks held) and wake any waiters."""
        ticket.result = result
        ticket._done.set()
        if ticket.on_complete is not None:
            ticket.on_complete(result)

    def _cancel_group(self, group: RaceGroup) -> None:
        """A racer won: terminate running losers; queued ones cancel at admit."""
        for worker in list(self._workers):
            ticket = worker.slot
            if ticket is not None and ticket.group is group:
                worker.clear()
                self._retire(worker)
                self._complete_cancelled(ticket)

    def _shutdown_pending(self) -> None:
        """The pool is closing: cancel queued tickets and busy workers."""
        while True:
            with self._cond:
                if not self._inbox:
                    break
                ticket = self._inbox.popleft()
            self._complete_cancelled(ticket)
        for worker in list(self._workers):
            ticket = worker.slot
            if ticket is not None:
                worker.clear()
                self._retire(worker)
                self._complete_cancelled(ticket)

    # -- Internals --------------------------------------------------------------

    def _idle_worker(self) -> Optional[_Worker]:
        for worker in self._workers:
            if not worker.busy:
                if worker.process.is_alive():
                    return worker
                self._retire(worker)
                break
        if len(self._workers) < self.size:
            worker = _Worker(self._ctx)
            self._workers.append(worker)
            self.workers_spawned += 1
            jlog(logger, "pool.worker_spawned", worker_pid=worker.process.pid)
            return worker
        return None

    def _retire(self, worker: _Worker) -> None:
        worker.stop()
        if worker in self._workers:
            self._workers.remove(worker)


def _cancelled(job: SynthesisJob) -> JobResult:
    return JobResult(job.job_id, job.name, job.solver, CANCELLED)


def _safe_name(job_id: str) -> str:
    """A job id reduced to filesystem-safe characters for journal names."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in job_id)


def job_hard_timeout(worker: _Worker) -> float:
    assert worker.deadline is not None
    return worker.deadline - worker.assigned_at
