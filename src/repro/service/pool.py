"""A crash-tolerant multiprocessing worker pool for synthesis jobs.

Design constraints (why this is not ``concurrent.futures``):

- **Workers are survivable, not trusted.**  A synthesis run may hang, blow
  past its budget, or die (stack overflow, OOM kill).  The parent owns every
  job's hard deadline, detects dead workers by process liveness (not by pipe
  EOF alone), terminates and respawns on overrun, and retries each failed
  job once (configurable) before recording a ``crashed``/``timeout`` result.
  ``ProcessPoolExecutor`` instead marks the whole pool broken on one lost
  worker and offers no per-job deadline.
- **First-finisher-wins races.**  :meth:`WorkerPool.race` runs several jobs
  for the *same* logical question (portfolio members, height workers) and
  terminates the losers the moment one solves — the paper's Section 5.1
  semantics, but across processes instead of GIL-bound threads.
- **Bounded queue + fingerprint cache.**  Jobs are admitted at most
  ``queue_size`` at a time, and a :class:`~repro.service.cache.ResultCache`
  short-circuits jobs whose fingerprint already has a terminal result.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import threading
import time
from collections import deque
from multiprocessing.connection import wait as _conn_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs.log import jlog
from repro.service.cache import ResultCache

logger = logging.getLogger(__name__)
from repro.service.jobs import (
    CANCELLED,
    CRASHED,
    SOLVED,
    TIMEOUT,
    JobResult,
    SynthesisJob,
    execute_job,
)

ProgressFn = Callable[[JobResult], None]


class PoolError(RuntimeError):
    """The pool was used after :meth:`WorkerPool.close`."""


def _worker_main(conn) -> None:
    """Worker loop: receive a job, run it, send the result, repeat.

    ``None`` is the shutdown sentinel.  ``execute_job`` never raises, so the
    only ways a worker stops replying are a hard crash or a hang — both are
    the parent's responsibility.
    """
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if job is None:
            return
        try:
            conn.send(execute_job(job))
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One worker process plus its parent-side pipe end and assignment."""

    __slots__ = ("process", "conn", "slot", "assigned_at", "deadline")

    def __init__(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.slot: Optional[Tuple[int, SynthesisJob]] = None
        self.assigned_at = 0.0
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.slot is not None

    def assign(self, index: int, job: SynthesisJob) -> None:
        self.conn.send(job)
        self.slot = (index, job)
        self.assigned_at = time.monotonic()
        hard = job.effective_hard_timeout
        self.deadline = self.assigned_at + hard if hard is not None else None

    def clear(self) -> None:
        self.slot = None
        self.deadline = None

    def stop(self, grace: float = 1.0) -> None:
        """Terminate the process (escalating to SIGKILL) and close the pipe."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(grace)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(grace)
        self.conn.close()


class WorkerPool:
    """Process pool executing :class:`SynthesisJob`\\ s with hard deadlines.

    Usable as a context manager; :meth:`run` and :meth:`race` may be called
    repeatedly until :meth:`close`.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        max_retries: int = 1,
        queue_size: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        start_method: Optional[str] = None,
        poll_interval: float = 0.05,
        flight_dir: Optional[str] = None,
    ) -> None:
        self.size = max(1, workers if workers is not None else (os.cpu_count() or 1))
        self.max_retries = max(0, max_retries)
        self.queue_size = queue_size if queue_size is not None else 2 * self.size
        self.cache = cache
        self.poll_interval = poll_interval
        #: When set, every assignment gets a per-attempt flight-recorder
        #: journal here (see :mod:`repro.obs.flight`); journals of cleanly
        #: completed attempts are removed, crashed/hung ones are kept and
        #: recovered into ``JobResult.postmortem``.
        self.flight_dir = flight_dir
        if flight_dir is not None:
            os.makedirs(flight_dir, exist_ok=True)
        #: Live per-job state for the ``/jobs`` telemetry endpoint, keyed by
        #: job id.  Mutated by the scheduler loop (main thread), snapshotted
        #: by the HTTP server thread — hence the lock.
        self._live: Dict[str, Dict] = {}
        self._live_lock = threading.Lock()
        method = start_method or os.environ.get("REPRO_SERVICE_START_METHOD")
        if method is None:
            # fork is markedly cheaper where available; jobs carry only text
            # and plain dataclasses, so either start method is correct.
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(method)
        self._workers: List[_Worker] = []
        self._closed = False
        self._job_seq = 0

    # -- Introspection (used by tests to simulate worker death) ----------------

    def worker_pids(self) -> List[int]:
        return [
            w.process.pid
            for w in self._workers
            if w.process.pid is not None and w.process.is_alive()
        ]

    # -- Live job view (the `/jobs` telemetry endpoint's provider) --------------

    def jobs_snapshot(self) -> List[Dict]:
        """Thread-safe snapshot of every tracked job's live state.

        Each entry: ``job_id``, ``name``, ``solver``, ``state`` (``queued`` /
        ``running`` / ``retrying`` / ``done``), final ``status`` when done,
        ``attempts``, ``queue_wait``, and — while running — the assigned
        ``worker_pid``, ``running_for`` and ``deadline_in`` seconds.
        """
        now = time.monotonic()
        with self._live_lock:
            states = [dict(state) for state in self._live.values()]
        for state in states:
            deadline = state.pop("_deadline", None)
            assigned_at = state.pop("_assigned_at", None)
            running = state.get("state") == "running"
            state["deadline_in"] = (
                round(deadline - now, 3) if running and deadline is not None
                else None
            )
            state["running_for"] = (
                round(now - assigned_at, 3)
                if running and assigned_at is not None
                else None
            )
        return states

    def _live_update(self, job: SynthesisJob, **fields) -> None:
        with self._live_lock:
            state = self._live.get(job.job_id)
            if state is None:
                if len(self._live) > 10_000:
                    # Long-lived pools (portfolio races) must not grow the
                    # view without bound: drop the oldest finished entries.
                    done = [k for k, s in self._live.items()
                            if s.get("state") == "done"]
                    for key in done[: len(done) // 2]:
                        del self._live[key]
                state = self._live[job.job_id] = {
                    "job_id": job.job_id,
                    "name": job.name,
                    "solver": job.solver,
                    "state": "queued",
                    "status": None,
                    "attempts": 0,
                    "queue_wait": None,
                    "worker_pid": None,
                }
            state.update(fields)

    # -- Public API -------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[SynthesisJob],
        progress: Optional[ProgressFn] = None,
    ) -> List[JobResult]:
        """Execute every job; results come back in submission order."""
        return self._execute(list(jobs), stop_on_first_solved=False, progress=progress)

    def race(
        self,
        jobs: Sequence[SynthesisJob],
        progress: Optional[ProgressFn] = None,
    ) -> Tuple[Optional[JobResult], List[JobResult]]:
        """First-finisher-wins: stop (and cancel losers) on the first solve.

        Returns ``(winner, results)``; ``winner`` is ``None`` when nobody
        solved.  Losing racers get ``cancelled`` results.
        """
        results = self._execute(list(jobs), stop_on_first_solved=True, progress=progress)
        winner = next((r for r in results if r.status == SOLVED), None)
        return winner, results

    def close(self) -> None:
        """Graceful shutdown: idle workers get the sentinel, busy ones SIGTERM."""
        for worker in self._workers:
            if not worker.busy:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._workers:
            if worker.busy:
                worker.stop()
            else:
                worker.process.join(1.0)
                if worker.process.is_alive():
                    worker.stop()
                else:
                    worker.conn.close()
        self._workers = []
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- Scheduler --------------------------------------------------------------

    def _execute(
        self,
        jobs: List[SynthesisJob],
        stop_on_first_solved: bool,
        progress: Optional[ProgressFn],
    ) -> List[JobResult]:
        if self._closed:
            raise PoolError("pool is closed")
        for job in jobs:
            if not job.job_id:
                self._job_seq += 1
                job.job_id = f"job-{self._job_seq}"
            self._live_update(job)

        pending: deque = deque()
        feed = iter(enumerate(jobs))
        feed_done = False
        completed: Dict[int, JobResult] = {}
        attempts: Dict[int, int] = {}
        failures: Dict[int, List[str]] = {}
        #: Flight-recorder recoveries from failed attempts, by job index.
        postmortems: Dict[int, Dict] = {}
        #: Per-index queue wait: submission (= this call) to the assignment
        #: that produced the final result (or to the cache short-circuit).
        queue_waits: Dict[int, float] = {}
        submitted_at = time.monotonic()
        cancelling = False

        def complete(index: int, job: SynthesisJob, result: JobResult) -> None:
            nonlocal cancelling
            result.attempts = attempts.get(index, result.attempts)
            result.failures = failures.get(index, []) or result.failures
            result.queue_wait = round(queue_waits.get(index, 0.0), 4)
            if result.postmortem is None and index in postmortems:
                result.postmortem = postmortems[index]
            completed[index] = result
            self._live_update(
                job, state="done", status=result.status, worker_pid=None,
                queue_wait=result.queue_wait,
            )
            jlog(
                logger, "job.completed",
                job_id=job.job_id, problem=job.name, status=result.status,
                wall=round(result.wall_time, 4),
                queue_wait=result.queue_wait,
                attempts=result.attempts, from_cache=result.from_cache,
            )
            if self.cache is not None and not result.from_cache:
                self.cache.put(job.fingerprint(), result)
            registry = obs.metrics()
            registry.counter("pool.jobs_completed").inc()
            registry.counter(f"pool.status.{result.status}").inc()
            registry.histogram("pool.queue_wait_seconds").observe(
                result.queue_wait
            )
            if result.telemetry is not None and not result.from_cache:
                obs.merge_job_telemetry(
                    result.telemetry,
                    name=result.name,
                    status=result.status,
                    wall_time=result.wall_time,
                )
            if progress is not None:
                progress(result)
            if stop_on_first_solved and result.status == SOLVED:
                cancelling = True

        def recover_postmortem(index: int, job: SynthesisJob) -> None:
            """Salvage the flight journal a failed attempt left behind."""
            if not job.flight_journal:
                return
            from repro.obs.flight import read_postmortem

            postmortem = read_postmortem(job.flight_journal)
            if postmortem is not None:
                postmortems[index] = postmortem
                obs.metrics().counter("pool.postmortems_recovered").inc()

        def fail_attempt(worker: _Worker, reason: str, status: str) -> None:
            """A worker crashed/hung on its job: retire it, retry or record."""
            index, job = worker.slot  # type: ignore[misc]
            elapsed = time.monotonic() - worker.assigned_at
            worker.clear()
            self._retire(worker)
            failures.setdefault(index, []).append(reason)
            recover_postmortem(index, job)
            will_retry = attempts[index] <= self.max_retries
            jlog(
                logger, "job.attempt_failed",
                job_id=job.job_id, problem=job.name, reason=reason,
                attempt=attempts[index], will_retry=will_retry,
                postmortem=index in postmortems,
            )
            if will_retry:
                self._live_update(job, state="retrying", worker_pid=None)
                pending.appendleft((index, job))
                return
            complete(
                index,
                job,
                JobResult(
                    job.job_id, job.name, job.solver, status,
                    wall_time=round(elapsed, 4), error=reason,
                ),
            )

        while len(completed) < len(jobs):
            if cancelling:
                self._cancel_remaining(
                    jobs, pending, feed, feed_done, completed, progress,
                    queue_waits,
                )
                break

            while not feed_done and len(pending) < self.queue_size:
                try:
                    pending.append(next(feed))
                except StopIteration:
                    feed_done = True

            # Assign work: cache hits complete immediately without a worker.
            while pending and not cancelling:
                index, job = pending[0]
                if attempts.get(index, 0) == 0 and self.cache is not None:
                    hit = self.cache.get(job.fingerprint())
                    if hit is not None:
                        pending.popleft()
                        result = JobResult.from_json(hit.to_json())
                        result.job_id = job.job_id
                        result.name = job.name
                        result.from_cache = True
                        # A cached record's telemetry describes the original
                        # run, not this batch: don't re-merge it.
                        result.telemetry = None
                        queue_waits[index] = time.monotonic() - submitted_at
                        complete(index, job, result)
                        continue
                worker = self._idle_worker()
                if worker is None:
                    break
                pending.popleft()
                attempts[index] = attempts.get(index, 0) + 1
                if self.flight_dir is not None:
                    job.flight_journal = os.path.join(
                        self.flight_dir,
                        f"{_safe_name(job.job_id)}"
                        f"-attempt{attempts[index]}.flight.jsonl",
                    )
                worker.assign(index, job)
                queue_waits[index] = worker.assigned_at - submitted_at
                self._live_update(
                    job, state="running", attempts=attempts[index],
                    worker_pid=worker.process.pid,
                    queue_wait=round(queue_waits[index], 4),
                    _deadline=worker.deadline,
                    _assigned_at=worker.assigned_at,
                )
                jlog(
                    logger, "job.assigned",
                    job_id=job.job_id, problem=job.name,
                    worker_pid=worker.process.pid, attempt=attempts[index],
                )
            registry = obs.metrics()
            registry.gauge("pool.workers_alive").set(len(self._workers))
            registry.gauge("pool.jobs_queued").set(float(len(pending)))
            registry.gauge("pool.jobs_running").set(
                float(sum(1 for w in self._workers if w.busy))
            )
            if cancelling or len(completed) >= len(jobs):
                continue

            busy = [w for w in self._workers if w.busy]
            if not busy:
                continue
            ready = _conn_wait([w.conn for w in busy], timeout=self.poll_interval)
            now = time.monotonic()
            for worker in busy:
                if not worker.busy:
                    continue
                if worker.conn in ready:
                    try:
                        result = worker.conn.recv()
                    except (EOFError, OSError):
                        fail_attempt(
                            worker,
                            "crashed: worker pipe closed mid-job",
                            CRASHED,
                        )
                        continue
                    index, job = worker.slot  # type: ignore[misc]
                    worker.clear()
                    if result.status == CRASHED:
                        # In-process failure: the worker survives, the job is
                        # retried like any other crash.  Its journal stays on
                        # disk and feeds the post-mortem.
                        failures.setdefault(index, []).append(
                            f"crashed: {result.error}"
                        )
                        recover_postmortem(index, job)
                        if attempts[index] <= self.max_retries:
                            self._live_update(
                                job, state="retrying", worker_pid=None
                            )
                            pending.appendleft((index, job))
                        else:
                            complete(index, job, result)
                    else:
                        # Clean completion: the flight journal served its
                        # purpose and would only accumulate on disk.
                        if job.flight_journal:
                            try:
                                os.unlink(job.flight_journal)
                            except OSError:
                                pass
                        complete(index, job, result)
                elif not worker.process.is_alive():
                    fail_attempt(
                        worker,
                        "crashed: worker exited with code "
                        f"{worker.process.exitcode}",
                        CRASHED,
                    )
                elif worker.deadline is not None and now > worker.deadline:
                    fail_attempt(
                        worker,
                        "timeout: exceeded hard deadline of "
                        f"{job_hard_timeout(worker):.3g}s",
                        TIMEOUT,
                    )

        return [completed[i] for i in range(len(jobs))]

    # -- Internals --------------------------------------------------------------

    def _idle_worker(self) -> Optional[_Worker]:
        for worker in self._workers:
            if not worker.busy:
                if worker.process.is_alive():
                    return worker
                self._retire(worker)
                break
        if len(self._workers) < self.size:
            worker = _Worker(self._ctx)
            self._workers.append(worker)
            jlog(logger, "pool.worker_spawned", worker_pid=worker.process.pid)
            return worker
        return None

    def _retire(self, worker: _Worker) -> None:
        worker.stop()
        if worker in self._workers:
            self._workers.remove(worker)

    def _cancel_remaining(
        self, jobs, pending, feed, feed_done, completed, progress,
        queue_waits=None,
    ) -> None:
        """A racer won: terminate running losers, mark the rest cancelled."""
        queue_waits = queue_waits or {}
        for worker in list(self._workers):
            if worker.busy:
                index, job = worker.slot
                worker.clear()
                self._retire(worker)
                completed[index] = _cancelled(job)
                completed[index].queue_wait = round(
                    queue_waits.get(index, 0.0), 4
                )
                self._live_update(job, state="done", status=CANCELLED,
                                  worker_pid=None)
                if progress is not None:
                    progress(completed[index])
        leftovers = list(pending)
        if not feed_done:
            leftovers.extend(feed)
        for index, job in leftovers:
            if index not in completed:
                completed[index] = _cancelled(job)
                self._live_update(job, state="done", status=CANCELLED)
                if progress is not None:
                    progress(completed[index])


def _cancelled(job: SynthesisJob) -> JobResult:
    return JobResult(job.job_id, job.name, job.solver, CANCELLED)


def _safe_name(job_id: str) -> str:
    """A job id reduced to filesystem-safe characters for journal names."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in job_id)


def job_hard_timeout(worker: _Worker) -> float:
    assert worker.deadline is not None
    return worker.deadline - worker.assigned_at
