"""A crash-tolerant multiprocessing worker pool for synthesis jobs.

Design constraints (why this is not ``concurrent.futures``):

- **Workers are survivable, not trusted.**  A synthesis run may hang, blow
  past its budget, or die (stack overflow, OOM kill).  The parent owns every
  job's hard deadline, detects dead workers by process liveness (not by pipe
  EOF alone), terminates and respawns on overrun, and retries each failed
  job once (configurable) before recording a ``crashed``/``timeout`` result.
  ``ProcessPoolExecutor`` instead marks the whole pool broken on one lost
  worker and offers no per-job deadline.
- **First-finisher-wins races.**  :meth:`WorkerPool.race` runs several jobs
  for the *same* logical question (portfolio members, height workers) and
  terminates the losers the moment one solves — the paper's Section 5.1
  semantics, but across processes instead of GIL-bound threads.
- **Bounded queue + fingerprint cache.**  Jobs are admitted at most
  ``queue_size`` at a time, and a :class:`~repro.service.cache.ResultCache`
  short-circuits jobs whose fingerprint already has a terminal result.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from multiprocessing.connection import wait as _conn_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.service.cache import ResultCache
from repro.service.jobs import (
    CANCELLED,
    CRASHED,
    SOLVED,
    TIMEOUT,
    JobResult,
    SynthesisJob,
    execute_job,
)

ProgressFn = Callable[[JobResult], None]


class PoolError(RuntimeError):
    """The pool was used after :meth:`WorkerPool.close`."""


def _worker_main(conn) -> None:
    """Worker loop: receive a job, run it, send the result, repeat.

    ``None`` is the shutdown sentinel.  ``execute_job`` never raises, so the
    only ways a worker stops replying are a hard crash or a hang — both are
    the parent's responsibility.
    """
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if job is None:
            return
        try:
            conn.send(execute_job(job))
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One worker process plus its parent-side pipe end and assignment."""

    __slots__ = ("process", "conn", "slot", "assigned_at", "deadline")

    def __init__(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.slot: Optional[Tuple[int, SynthesisJob]] = None
        self.assigned_at = 0.0
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.slot is not None

    def assign(self, index: int, job: SynthesisJob) -> None:
        self.conn.send(job)
        self.slot = (index, job)
        self.assigned_at = time.monotonic()
        hard = job.effective_hard_timeout
        self.deadline = self.assigned_at + hard if hard is not None else None

    def clear(self) -> None:
        self.slot = None
        self.deadline = None

    def stop(self, grace: float = 1.0) -> None:
        """Terminate the process (escalating to SIGKILL) and close the pipe."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(grace)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(grace)
        self.conn.close()


class WorkerPool:
    """Process pool executing :class:`SynthesisJob`\\ s with hard deadlines.

    Usable as a context manager; :meth:`run` and :meth:`race` may be called
    repeatedly until :meth:`close`.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        max_retries: int = 1,
        queue_size: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        start_method: Optional[str] = None,
        poll_interval: float = 0.05,
    ) -> None:
        self.size = max(1, workers if workers is not None else (os.cpu_count() or 1))
        self.max_retries = max(0, max_retries)
        self.queue_size = queue_size if queue_size is not None else 2 * self.size
        self.cache = cache
        self.poll_interval = poll_interval
        method = start_method or os.environ.get("REPRO_SERVICE_START_METHOD")
        if method is None:
            # fork is markedly cheaper where available; jobs carry only text
            # and plain dataclasses, so either start method is correct.
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(method)
        self._workers: List[_Worker] = []
        self._closed = False
        self._job_seq = 0

    # -- Introspection (used by tests to simulate worker death) ----------------

    def worker_pids(self) -> List[int]:
        return [
            w.process.pid
            for w in self._workers
            if w.process.pid is not None and w.process.is_alive()
        ]

    # -- Public API -------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[SynthesisJob],
        progress: Optional[ProgressFn] = None,
    ) -> List[JobResult]:
        """Execute every job; results come back in submission order."""
        return self._execute(list(jobs), stop_on_first_solved=False, progress=progress)

    def race(
        self,
        jobs: Sequence[SynthesisJob],
        progress: Optional[ProgressFn] = None,
    ) -> Tuple[Optional[JobResult], List[JobResult]]:
        """First-finisher-wins: stop (and cancel losers) on the first solve.

        Returns ``(winner, results)``; ``winner`` is ``None`` when nobody
        solved.  Losing racers get ``cancelled`` results.
        """
        results = self._execute(list(jobs), stop_on_first_solved=True, progress=progress)
        winner = next((r for r in results if r.status == SOLVED), None)
        return winner, results

    def close(self) -> None:
        """Graceful shutdown: idle workers get the sentinel, busy ones SIGTERM."""
        for worker in self._workers:
            if not worker.busy:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._workers:
            if worker.busy:
                worker.stop()
            else:
                worker.process.join(1.0)
                if worker.process.is_alive():
                    worker.stop()
                else:
                    worker.conn.close()
        self._workers = []
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- Scheduler --------------------------------------------------------------

    def _execute(
        self,
        jobs: List[SynthesisJob],
        stop_on_first_solved: bool,
        progress: Optional[ProgressFn],
    ) -> List[JobResult]:
        if self._closed:
            raise PoolError("pool is closed")
        for job in jobs:
            if not job.job_id:
                self._job_seq += 1
                job.job_id = f"job-{self._job_seq}"

        pending: deque = deque()
        feed = iter(enumerate(jobs))
        feed_done = False
        completed: Dict[int, JobResult] = {}
        attempts: Dict[int, int] = {}
        failures: Dict[int, List[str]] = {}
        #: Per-index queue wait: submission (= this call) to the assignment
        #: that produced the final result (or to the cache short-circuit).
        queue_waits: Dict[int, float] = {}
        submitted_at = time.monotonic()
        cancelling = False

        def complete(index: int, job: SynthesisJob, result: JobResult) -> None:
            nonlocal cancelling
            result.attempts = attempts.get(index, result.attempts)
            result.failures = failures.get(index, []) or result.failures
            result.queue_wait = round(queue_waits.get(index, 0.0), 4)
            completed[index] = result
            if self.cache is not None and not result.from_cache:
                self.cache.put(job.fingerprint(), result)
            registry = obs.metrics()
            registry.counter("pool.jobs_completed").inc()
            registry.counter(f"pool.status.{result.status}").inc()
            registry.histogram("pool.queue_wait_seconds").observe(
                result.queue_wait
            )
            if result.telemetry is not None and not result.from_cache:
                obs.merge_job_telemetry(
                    result.telemetry,
                    name=result.name,
                    status=result.status,
                    wall_time=result.wall_time,
                )
            if progress is not None:
                progress(result)
            if stop_on_first_solved and result.status == SOLVED:
                cancelling = True

        def fail_attempt(worker: _Worker, reason: str, status: str) -> None:
            """A worker crashed/hung on its job: retire it, retry or record."""
            index, job = worker.slot  # type: ignore[misc]
            elapsed = time.monotonic() - worker.assigned_at
            worker.clear()
            self._retire(worker)
            failures.setdefault(index, []).append(reason)
            if attempts[index] <= self.max_retries:
                pending.appendleft((index, job))
                return
            complete(
                index,
                job,
                JobResult(
                    job.job_id, job.name, job.solver, status,
                    wall_time=round(elapsed, 4), error=reason,
                ),
            )

        while len(completed) < len(jobs):
            if cancelling:
                self._cancel_remaining(
                    jobs, pending, feed, feed_done, completed, progress,
                    queue_waits,
                )
                break

            while not feed_done and len(pending) < self.queue_size:
                try:
                    pending.append(next(feed))
                except StopIteration:
                    feed_done = True

            # Assign work: cache hits complete immediately without a worker.
            while pending and not cancelling:
                index, job = pending[0]
                if attempts.get(index, 0) == 0 and self.cache is not None:
                    hit = self.cache.get(job.fingerprint())
                    if hit is not None:
                        pending.popleft()
                        result = JobResult.from_json(hit.to_json())
                        result.job_id = job.job_id
                        result.name = job.name
                        result.from_cache = True
                        # A cached record's telemetry describes the original
                        # run, not this batch: don't re-merge it.
                        result.telemetry = None
                        queue_waits[index] = time.monotonic() - submitted_at
                        complete(index, job, result)
                        continue
                worker = self._idle_worker()
                if worker is None:
                    break
                pending.popleft()
                attempts[index] = attempts.get(index, 0) + 1
                worker.assign(index, job)
                queue_waits[index] = worker.assigned_at - submitted_at
            if cancelling or len(completed) >= len(jobs):
                continue

            busy = [w for w in self._workers if w.busy]
            if not busy:
                continue
            ready = _conn_wait([w.conn for w in busy], timeout=self.poll_interval)
            now = time.monotonic()
            for worker in busy:
                if not worker.busy:
                    continue
                if worker.conn in ready:
                    try:
                        result = worker.conn.recv()
                    except (EOFError, OSError):
                        fail_attempt(
                            worker,
                            "crashed: worker pipe closed mid-job",
                            CRASHED,
                        )
                        continue
                    index, job = worker.slot  # type: ignore[misc]
                    worker.clear()
                    if result.status == CRASHED:
                        # In-process failure: the worker survives, the job is
                        # retried like any other crash.
                        failures.setdefault(index, []).append(
                            f"crashed: {result.error}"
                        )
                        if attempts[index] <= self.max_retries:
                            pending.appendleft((index, job))
                        else:
                            complete(index, job, result)
                    else:
                        complete(index, job, result)
                elif not worker.process.is_alive():
                    fail_attempt(
                        worker,
                        "crashed: worker exited with code "
                        f"{worker.process.exitcode}",
                        CRASHED,
                    )
                elif worker.deadline is not None and now > worker.deadline:
                    fail_attempt(
                        worker,
                        "timeout: exceeded hard deadline of "
                        f"{job_hard_timeout(worker):.3g}s",
                        TIMEOUT,
                    )

        return [completed[i] for i in range(len(jobs))]

    # -- Internals --------------------------------------------------------------

    def _idle_worker(self) -> Optional[_Worker]:
        for worker in self._workers:
            if not worker.busy:
                if worker.process.is_alive():
                    return worker
                self._retire(worker)
                break
        if len(self._workers) < self.size:
            worker = _Worker(self._ctx)
            self._workers.append(worker)
            return worker
        return None

    def _retire(self, worker: _Worker) -> None:
        worker.stop()
        if worker in self._workers:
            self._workers.remove(worker)

    def _cancel_remaining(
        self, jobs, pending, feed, feed_done, completed, progress,
        queue_waits=None,
    ) -> None:
        """A racer won: terminate running losers, mark the rest cancelled."""
        queue_waits = queue_waits or {}
        for worker in list(self._workers):
            if worker.busy:
                index, job = worker.slot
                worker.clear()
                self._retire(worker)
                completed[index] = _cancelled(job)
                completed[index].queue_wait = round(
                    queue_waits.get(index, 0.0), 4
                )
                if progress is not None:
                    progress(completed[index])
        leftovers = list(pending)
        if not feed_done:
            leftovers.extend(feed)
        for index, job in leftovers:
            if index not in completed:
                completed[index] = _cancelled(job)
                if progress is not None:
                    progress(completed[index])


def _cancelled(job: SynthesisJob) -> JobResult:
    return JobResult(job.job_id, job.name, job.solver, CANCELLED)


def job_hard_timeout(worker: _Worker) -> float:
    assert worker.deadline is not None
    return worker.deadline - worker.assigned_at
