"""Job and result types for the synthesis service, plus worker-side execution.

A :class:`SynthesisJob` is fully picklable: the problem travels as SyGuS-IF
text, the solver as a registry name, the configuration as the plain
:class:`~repro.synth.config.SynthConfig` dataclass.  The worker parses the
text, runs the named solver and answers with a :class:`JobResult` whose
solution (if any) is again serialized text — :class:`~repro.lang.ast.Term`
values never cross the process boundary.
"""

from __future__ import annotations

import logging
import time
import traceback
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional

from repro.obs import trace as obs_trace
from repro.obs.log import ensure_worker_logging, jlog, log_context
from repro.synth.config import SynthConfig

logger = logging.getLogger(__name__)

# Job outcome statuses (plain strings so JSON round-trips are trivial).
SOLVED = "solved"
UNSOLVED = "unsolved"
TIMEOUT = "timeout"
CRASHED = "crashed"
CANCELLED = "cancelled"
#: The parent killed the worker for exceeding the pool's soft RSS budget
#: (``WorkerPool(max_rss_mb=...)``).  Deliberately *not* terminal for the
#: result cache: a different budget could complete the same fingerprint.
OOM_BUDGET = "oom_budget"

TERMINAL_STATUSES = (SOLVED, UNSOLVED, TIMEOUT)

#: Grace multiplier/offset turning a job's soft (in-worker) timeout into the
#: hard deadline the parent enforces with SIGTERM.
HARD_TIMEOUT_FACTOR = 1.5
HARD_TIMEOUT_MARGIN = 5.0


@dataclass
class SynthesisJob:
    """One solver run over one problem, ready to ship to a worker process."""

    problem_text: str
    solver: str = "dryadsynth"
    config: SynthConfig = field(default_factory=SynthConfig)
    #: Soft wall-clock budget enforced inside the worker (overrides
    #: ``config.timeout`` when set).
    timeout: Optional[float] = None
    #: Hard deadline enforced by the parent (terminate + retry).  Defaults to
    #: ``timeout * HARD_TIMEOUT_FACTOR + HARD_TIMEOUT_MARGIN``.
    hard_timeout: Optional[float] = None
    job_id: str = ""
    name: str = "job"
    #: Record spans/metrics inside the worker and ship them back in the
    #: result's ``telemetry`` payload (see :mod:`repro.obs`).  Off by
    #: default; does not affect the job's fingerprint.
    telemetry: bool = False
    #: Run a wall-clock stack sampler (:mod:`repro.obs.sampler`) inside the
    #: worker for this job's duration; the collapsed-stack profile ships
    #: back in ``telemetry`` and merges fleet-wide.  Fingerprint-neutral,
    #: like ``telemetry``.
    sample: bool = False
    #: Flight-recorder journal path (see :mod:`repro.obs.flight`): the
    #: worker mirrors its recent telemetry into this crash-resistant file so
    #: the parent can recover a post-mortem if it has to kill the worker.
    #: Assigned per attempt by the pool when it has a ``flight_dir``; does
    #: not affect the fingerprint.
    flight_journal: Optional[str] = None
    #: Free-form extras for special solvers (e.g. debug hooks) and worker
    #: plumbing (``log_json``: re-attach structured logging under spawn).
    params: Dict[str, str] = field(default_factory=dict)

    @property
    def effective_timeout(self) -> Optional[float]:
        return self.timeout if self.timeout is not None else self.config.timeout

    @property
    def effective_hard_timeout(self) -> Optional[float]:
        if self.hard_timeout is not None:
            return self.hard_timeout
        soft = self.effective_timeout
        if soft is None:
            return None
        return soft * HARD_TIMEOUT_FACTOR + HARD_TIMEOUT_MARGIN

    def run_config(self) -> SynthConfig:
        """The worker-side config, with the job's soft timeout applied."""
        if self.timeout is None:
            return self.config
        return replace(self.config, timeout=self.timeout)

    def fingerprint(self) -> str:
        from repro.service.fingerprint import problem_fingerprint

        return problem_fingerprint(self.problem_text, self.solver, self.run_config())

    @staticmethod
    def from_problem(problem, solver: str = "dryadsynth", **kwargs) -> "SynthesisJob":
        """Build a job from an in-memory problem (single- or multi-function)."""
        from repro.sygus.multi import MultiSygusProblem
        from repro.sygus.serializer import multi_problem_to_sygus, problem_to_sygus

        if isinstance(problem, MultiSygusProblem):
            text = multi_problem_to_sygus(problem)
        else:
            text = problem_to_sygus(problem)
        kwargs.setdefault("name", problem.name)
        return SynthesisJob(problem_text=text, solver=solver, **kwargs)

    @staticmethod
    def from_file(path: str, solver: str = "dryadsynth", **kwargs) -> "SynthesisJob":
        import os

        with open(path) as handle:
            text = handle.read()
        name = os.path.basename(path)
        if name.endswith(".sl"):
            name = name[: -len(".sl")]
        kwargs.setdefault("name", name)
        return SynthesisJob(problem_text=text, solver=solver, **kwargs)


@dataclass
class JobResult:
    """Typed outcome of one job (the JSONL record of ``dryadsynth batch``)."""

    job_id: str
    name: str
    solver: str
    status: str
    solution_text: Optional[str] = None
    solution_size: Optional[int] = None
    solution_height: Optional[int] = None
    wall_time: float = 0.0
    #: Seconds the job spent waiting for a worker (submission to the
    #: assignment that produced this result); lets batch/race latency be
    #: decomposed into wait vs. solve.
    queue_wait: float = 0.0
    stats: Dict = field(default_factory=dict)
    attempts: int = 1
    failures: List[str] = field(default_factory=list)
    from_cache: bool = False
    error: Optional[str] = None
    fingerprint: str = ""
    #: Worker-side telemetry (``{"spans": ..., "metrics": ...}``) when the
    #: job asked for it; the parent merges this into its own recorder.
    telemetry: Optional[Dict] = None
    #: Flight-recorder recovery (:func:`repro.obs.flight.read_postmortem`):
    #: what the worker was doing when it crashed or was terminated.  Only
    #: populated for jobs that had a failed attempt with a journal.
    postmortem: Optional[Dict] = None
    #: Worker-side resource accounting (:func:`repro.obs.rusage.delta`):
    #: ``peak_rss_bytes`` plus per-job ``user_cpu``/``sys_cpu`` seconds.
    rusage: Optional[Dict] = None

    @property
    def solved(self) -> bool:
        return self.status == SOLVED

    def to_json(self) -> Dict:
        return asdict(self)

    @staticmethod
    def from_json(data: Dict) -> "JobResult":
        return JobResult(**data)


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------


class FixedHeightJobSolver:
    """Run Algorithm 2 at one fixed height (the process-parallel height racer)."""

    def __init__(self, height: int, config: Optional[SynthConfig] = None):
        self.height = height
        self.config = config or SynthConfig()
        self.name = f"fixed-height@{height}"

    def synthesize(self, problem):
        from repro.smt.solver import SolverBudgetExceeded
        from repro.sygus.problem import Solution
        from repro.synth.cegis import CegisTimeout
        from repro.synth.encoding import EncodingUnsupported
        from repro.synth.fixed_height import fixed_height
        from repro.synth.result import SynthesisOutcome, SynthesisStats

        config = self.config
        stats = SynthesisStats()
        start = time.monotonic()
        deadline = start + config.timeout if config.timeout is not None else None
        stats.heights_tried += 1
        stats.max_height_reached = self.height
        try:
            body = fixed_height(
                problem,
                self.height,
                config,
                examples=[],
                deadline=deadline,
                stats=stats,
                prefix=f"svc{self.height}",
            )
        except (CegisTimeout, SolverBudgetExceeded):
            return SynthesisOutcome(None, stats, timed_out=True)
        except EncodingUnsupported:
            return SynthesisOutcome(None, stats)
        if body is None:
            return SynthesisOutcome(None, stats)
        elapsed = time.monotonic() - start
        return SynthesisOutcome(Solution(problem, body, self.name, elapsed), stats)


def build_solver(name: str, config: SynthConfig):
    """Instantiate a solver by service name (superset of the bench registry)."""
    if name.startswith("fixed-height@"):
        return FixedHeightJobSolver(int(name.split("@", 1)[1]), config)
    from repro.bench.runner import make_solver

    return make_solver(name, config=config)


def parse_solution_text(problem, text: str):
    """Parse a ``(define-fun ...)`` back into a body :class:`Term`.

    Interpreted grammar operators are kept as applications (not inlined) so
    the reconstructed body prints the same way the worker's solution did.
    """
    from repro.lang.sexpr import parse_sexpr
    from repro.sygus.parser import SygusParseError, _Context

    sexpr = parse_sexpr(text)
    if not (isinstance(sexpr, list) and len(sexpr) == 5 and sexpr[0] == "define-fun"):
        raise SygusParseError(f"not a define-fun: {text[:80]!r}")
    ctx = _Context()
    ctx.defined = dict(problem.synth_fun.grammar.interpreted)
    scope = {p.payload: p for p in problem.synth_fun.params}
    return ctx.parse_term(sexpr[4], scope, inline_defined=False)


def _debug_solver_result(job: SynthesisJob, start: float) -> Optional[JobResult]:
    """Built-in ``debug-*`` solvers exercising the pool's failure paths.

    These exist so crash/hang/retry handling can be tested (and demoed)
    deterministically without a real solver:

    - ``debug-solve[@secs]`` — optionally sleep, then "solve";
    - ``debug-sleep@secs`` — sleep, then report unsolved;
    - ``debug-hang`` — never return (parent must enforce the deadline);
    - ``debug-raise`` — raise inside the worker (in-process crash);
    - ``debug-exit[@code]`` — ``os._exit`` (hard crash, as if OOM-killed);
    - ``debug-crash-once@path`` — hard-crash on the first attempt (marker
      file absent), succeed on the retry;
    - ``debug-alloc@mb[:secs]`` — touch ``mb`` MiB of resident memory and
      hold it for ``secs`` (default 15s) — the stub that exercises the
      pool's ``max_rss_mb`` budget enforcement end to end.
    """
    name = job.solver
    if not name.startswith("debug-"):
        return None
    head, _, arg = name.partition("@")
    if head == "debug-solve":
        if arg:
            time.sleep(float(arg))
        return JobResult(
            job.job_id,
            job.name,
            job.solver,
            SOLVED,
            solution_text="(define-fun f () Int 0)",
            solution_size=1,
            solution_height=0,
            wall_time=time.monotonic() - start,
        )
    if head == "debug-sleep":
        time.sleep(float(arg))
        return JobResult(
            job.job_id, job.name, job.solver, UNSOLVED,
            wall_time=time.monotonic() - start,
        )
    if head == "debug-hang":
        while True:
            time.sleep(60.0)
    if head == "debug-raise":
        raise RuntimeError("debug-raise: simulated in-worker failure")
    if head == "debug-exit":
        import os

        os._exit(int(arg) if arg else 13)
    if head == "debug-crash-once":
        import os

        if not os.path.exists(arg):
            with open(arg, "w") as handle:
                handle.write("attempt 1\n")
            os._exit(13)
        return JobResult(
            job.job_id, job.name, job.solver, UNSOLVED,
            wall_time=time.monotonic() - start,
        )
    if head == "debug-alloc":
        from repro import obs

        mb_text, _, secs_text = arg.partition(":")
        mb = int(mb_text)
        hold = float(secs_text) if secs_text else 15.0
        # Name a frontier node before ballooning, so an over-budget kill's
        # postmortem can say what the "search" was touching (the same
        # forensics record real solvers journal).
        obs.event("graph.node", domain="forensics",
                  node=f"alloc{mb:08x}", fun="debug_alloc", depth=0)
        # bytearray zero-fills, so every page is touched and resident.
        ballast = bytearray(mb * 1024 * 1024)
        deadline = time.monotonic() + hold
        while time.monotonic() < deadline:
            time.sleep(0.05)
        del ballast
        return JobResult(
            job.job_id, job.name, job.solver, UNSOLVED,
            wall_time=time.monotonic() - start,
        )
    raise ValueError(f"unknown debug solver {name!r}")


def execute_job(job: SynthesisJob) -> JobResult:
    """Run one job to completion in the current process.

    Never raises: any exception is folded into a ``crashed`` result so a
    worker survives bad jobs (hard crashes — ``os._exit``, OOM kills — are
    detected by the parent instead).  Execution runs under a
    :func:`~repro.obs.log.log_context` carrying the job/problem correlation
    IDs, so every structured log record the solver stack emits below — down
    to per-query SMT events — is attributable to this job.  When the pool
    assigned a ``flight_journal``, a :class:`~repro.obs.flight.FlightRecorder`
    mirrors lifecycle notes and completed spans to disk *before* the solver
    runs, so even a worker SIGKILLed mid-job leaves a recoverable journal.
    """
    start = time.monotonic()
    ensure_worker_logging(job.params.get("log_json"))
    flight = _open_flight(job)
    ctx = obs_trace.extract(job.params)
    with log_context(job_id=job.job_id or None, problem=job.name,
                     solver=job.solver,
                     trace_id=ctx.trace_id if ctx else None):
        jlog(logger, "job.start", timeout=job.effective_timeout)
        try:
            result = _execute_recorded(job, start, flight)
        except Exception as exc:  # noqa: BLE001 - worker survival boundary
            result = JobResult(
                job.job_id,
                job.name,
                job.solver,
                CRASHED,
                wall_time=time.monotonic() - start,
                error=f"{type(exc).__name__}: {exc}",
                failures=[traceback.format_exc(limit=8)],
            )
            jlog(logger, "job.crashed", level=logging.ERROR,
                 error=result.error)
        jlog(logger, "job.end", status=result.status,
             wall=round(result.wall_time, 4))
        if flight is not None:
            flight.note("job.end", status=result.status,
                        wall=round(result.wall_time, 4))
            flight.close()
        return result


def _open_flight(job: SynthesisJob):
    """Open the job's flight journal (best-effort; never blocks the job)."""
    if not job.flight_journal:
        return None
    try:
        from repro.obs.flight import FlightRecorder

        ctx = obs_trace.extract(job.params)
        meta = {"job_id": job.job_id, "name": job.name,
                "solver": job.solver}
        if ctx is not None:
            # The crash journal must be joinable against the request trace
            # even when the worker dies before shipping any telemetry.
            meta["trace_id"] = ctx.trace_id
        flight = FlightRecorder(job.flight_journal, meta=meta)
        flight.note("job.start", timeout=job.effective_timeout or 0.0)
        return flight
    except OSError:
        return None


def _execute_recorded(job: SynthesisJob, start: float, flight) -> JobResult:
    """Dispatch to debug/real execution, recording telemetry when asked.

    A flight recorder forces an in-worker span recorder even when the job
    did not request shipped telemetry: the journal needs the span stream,
    but the (potentially large) payload only rides back on
    ``JobResult.telemetry`` when ``job.telemetry`` is set.  ``job.sample``
    likewise forces the recorded path: the stack sampler classifies samples
    against the recorder's open spans and its profile ships in the same
    payload.

    With a recorder installed, execution runs under a ``worker.request``
    root span carrying the distributed-trace ids the daemon injected into
    ``job.params`` — debug solvers included, so traced service tests don't
    need a real solve.  The daemon re-roots this tree under its own
    ``serve.request`` span on completion.  Every path records per-job
    rusage (:mod:`repro.obs.rusage`) into ``result.rusage``.
    """
    from repro.obs import rusage as _rusage

    usage_before = _rusage.snapshot()
    if not (job.telemetry or job.sample or flight is not None):
        debug = _debug_solver_result(job, start)
        result = debug if debug is not None else _execute_real_job(job, start)
        result.rusage = _rusage.delta(usage_before)
        return result
    from repro import obs
    from repro.obs.export import telemetry_payload

    trace_attrs = obs_trace.worker_span_attrs(job.params)
    with obs.recording() as recorder:
        if flight is not None:
            recorder.sink = flight
        sampler = None
        if job.sample:
            from repro.obs.sampler import StackSampler

            sampler = StackSampler(recorder=recorder).start()
        try:
            with recorder.span("worker.request", job_id=job.job_id or None,
                               problem=job.name, solver=job.solver,
                               **trace_attrs) as root:
                debug = _debug_solver_result(job, start)
                result = (debug if debug is not None
                          else _execute_real_job(job, start))
                root.set(job_status=result.status)
        finally:
            if sampler is not None:
                sampler.stop()
        usage = _rusage.delta(usage_before)
        result.rusage = usage
        if usage["peak_rss_bytes"]:
            recorder.metrics.gauge("process.peak_rss_bytes").set_max(
                float(usage["peak_rss_bytes"])
            )
        if sampler is not None:
            recorder.metrics.counter("obs.stack_samples").inc(
                sampler.profile.samples
            )
    if job.telemetry or job.sample:
        result.telemetry = telemetry_payload(
            recorder,
            profile=sampler.profile if sampler is not None else None,
            rusage=usage,
        )
        if not job.telemetry:
            # Sampling alone ships the profile and rusage, not the
            # (potentially large) span stream the job never asked for.
            result.telemetry.pop("spans", None)
    return result


def _execute_real_job(job: SynthesisJob, start: float) -> JobResult:
    from repro.sygus.multi import MultiSygusProblem
    from repro.sygus.parser import parse_sygus_text

    problem = parse_sygus_text(job.problem_text, name=job.name)
    config = job.run_config()
    if isinstance(problem, MultiSygusProblem):
        return _execute_multi(job, problem, config, start)
    solver = build_solver(job.solver, config)
    outcome = solver.synthesize(problem)
    elapsed = time.monotonic() - start
    result = JobResult(
        job.job_id,
        job.name,
        job.solver,
        SOLVED if outcome.solution is not None else (
            TIMEOUT if outcome.timed_out else UNSOLVED
        ),
        wall_time=elapsed,
        stats=asdict(outcome.stats),
    )
    if outcome.solution is not None:
        result.solution_text = outcome.solution.define_fun()
        result.solution_size = outcome.solution.size
        result.solution_height = outcome.solution.height
    return result


def _execute_multi(job, problem, config: SynthConfig, start: float) -> JobResult:
    """Multi-function problems always go through the multi synthesizer."""
    from repro.synth.multi import MultiFunctionSynthesizer

    solution, stats = MultiFunctionSynthesizer(config).synthesize(problem)
    elapsed = time.monotonic() - start
    result = JobResult(
        job.job_id,
        job.name,
        job.solver,
        SOLVED if solution is not None else UNSOLVED,
        wall_time=elapsed,
        stats=asdict(stats),
    )
    if solution is not None:
        result.solution_text = "\n".join(solution.define_funs())
    return result
