"""Persistent on-disk cache of :class:`~repro.service.jobs.JobResult` records.

Layout: one JSON file per fingerprint, sharded by the first two hex chars
(``<root>/ab/abcdef...json``) so a campaign over thousands of problems never
funnels through one directory or one giant index file (the weakness of the
ad-hoc ``bench_results.json`` cache this generalizes).  Writes are atomic
(temp file + rename), so a killed campaign never leaves a torn entry.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Iterator, Optional

from repro import obs
from repro.service.jobs import TERMINAL_STATUSES, JobResult

#: Entries carry a schema version; mismatched entries read as misses.
CACHE_SCHEMA = 1

DEFAULT_CACHE_ENV = "REPRO_SERVICE_CACHE"


def default_cache_dir() -> str:
    path = os.environ.get(DEFAULT_CACHE_ENV)
    if path:
        return path
    xdg = os.environ.get("XDG_CACHE_HOME", os.path.expanduser("~/.cache"))
    return os.path.join(xdg, "repro", "results")


class ResultCache:
    """Fingerprint-keyed job result store with hit/miss/evict accounting.

    The counters live both as plain attributes (``hits``/``misses``/
    ``evictions``, printed by the ``dryadsynth batch`` summary) and as
    ``cache.*`` metrics on the ambient :func:`repro.obs.metrics` registry,
    so fleet-wide dumps show cache effectiveness without extra plumbing.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = os.path.abspath(root or default_cache_dir())
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint[:2], fingerprint + ".json")

    def _miss(self) -> Optional[JobResult]:
        self.misses += 1
        obs.metrics().counter("cache.misses").inc()
        return None

    def get(self, fingerprint: str) -> Optional[JobResult]:
        path = self._path(fingerprint)
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return self._miss()
        if data.get("schema") != CACHE_SCHEMA:
            return self._miss()
        try:
            result = JobResult.from_json(data["result"])
        except (KeyError, TypeError):
            return self._miss()
        self.hits += 1
        obs.metrics().counter("cache.hits").inc()
        return result

    def put(self, fingerprint: str, result: JobResult) -> None:
        """Store a terminal result (crashed/cancelled runs are not cacheable)."""
        if result.status not in TERMINAL_STATUSES:
            return
        result.fingerprint = fingerprint
        path = self._path(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {"schema": CACHE_SCHEMA, "result": result.to_json()}
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry; returns whether it existed."""
        try:
            os.unlink(self._path(fingerprint))
        except OSError:
            return False
        self.evictions += 1
        obs.metrics().counter("cache.evictions").inc()
        return True

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)

    def fingerprints(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for entry in sorted(os.listdir(shard_dir)):
                if entry.endswith(".json") and not entry.startswith("."):
                    yield entry[: -len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.fingerprints())

    def __contains__(self, fingerprint: str) -> bool:
        return os.path.exists(self._path(fingerprint))
