"""Configuration knobs shared by the synthesis engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass
class SynthConfig:
    """Tunable parameters of the cooperative synthesizer.

    The defaults mirror DryadSynth's behaviour scaled to this repository's
    in-process benchmarks: coefficient magnitudes are searched in widening
    rounds (the paper's implementation bounds decision-tree coefficients the
    same way), heights are enumerated from 1 upward, and every engine
    respects a wall-clock deadline.
    """

    #: Maximum syntax-tree height the enumerative engine will try.
    max_height: int = 4

    #: Bound on decision-tree coefficients ``c_i``.
    coeff_bound: int = 2

    #: Widening schedule for the constant terms ``d_i``.
    const_bounds: Tuple[int, ...] = (1, 10, 100)

    #: Wall-clock budget in seconds (None = unlimited).
    timeout: Optional[float] = None

    #: Per-(node, height) time slice inside the cooperative loop, so a single
    #: expensive fixed-height run cannot starve the other subproblems (the
    #: sequential stand-in for the paper's per-height threads).
    enum_slice: Optional[float] = 30.0

    #: Maximum CEGIS iterations per fixed-height run.
    max_cegis_rounds: int = 40

    #: Maximum number of Type-A subproblems generated per divide step.
    max_subproblems: int = 6

    #: Simulated parallelism width for height enumeration (Section 5.1).
    parallel_widths: int = 1

    #: Enable the divide-and-conquer splitter.
    enable_divide: bool = True

    #: Enable the deductive component.
    enable_deduction: bool = True

    #: Node budget for the LIA branch-and-bound per SMT check.
    lia_node_budget: int = 20000

    #: Shrink the final solution with verification-preserving rewrites
    #: (bounded number of extra SMT checks; see repro.synth.minimize).
    minimize_solutions: bool = True

    #: SMT-check budget for the minimisation pass.
    minimize_budget: int = 16
