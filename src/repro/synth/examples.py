"""A type-aware counterexample set with O(1) membership.

Every CEGIS loop in this repo deduplicates counterexamples before growing
the inductive example set.  The naive ``example not in examples`` check has
two defects this class fixes once, for all callers:

- **Bool/Int collision.**  Python defines ``True == 1`` and
  ``hash(True) == hash(1)``, so dict equality makes the Bool-valued model
  ``{"b": True}`` collide with the Int-valued ``{"b": 1}``.  A CEGIS loop
  that already holds one of them silently drops the other — and because the
  "duplicate counterexample from ind-synth" branch means *exhausted*, the
  collision can abandon a solvable search.  Membership here is keyed on
  ``(name, is-bool, value)`` triples, which keep the two models distinct.
- **O(n) scan per round.**  The list scan made every CEGIS round linear in
  the example count; membership here is one set probe.

The set *wraps* an underlying list rather than replacing it: callers share
example lists across sessions and heights (``cegis`` documents that its
``examples`` argument is mutated in place), and wrapping preserves that
contract — appends through the wrapper land in the caller's list.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.lang.evaluator import Value

Example = Dict[str, Value]


def example_key(example: Example) -> Tuple:
    """A hashable, *typed* identity for an example.

    ``True`` and ``1`` (and ``False`` and ``0``) map to distinct keys; the
    name sorts first so dict insertion order never matters."""
    return tuple(
        sorted(
            (name, value.__class__ is bool, value)
            for name, value in example.items()
        )
    )


class ExampleSet:
    """A list of examples plus a typed membership index.

    Quacks enough like ``List[Example]`` (len/iter/index/slice/append) for
    every call site that previously held a plain list, while ``add`` and
    ``__contains__`` run off the index."""

    __slots__ = ("_examples", "_keys")

    def __init__(self, examples: Optional[List[Example]] = None) -> None:
        if examples is None:
            examples = []
        elif not isinstance(examples, list):
            examples = list(examples)
        self._examples = examples
        self._keys = {example_key(example) for example in examples}

    @classmethod
    def wrap(
        cls, examples: Union[None, "ExampleSet", List[Example]]
    ) -> "ExampleSet":
        """Wrap a caller's list (idempotent on an existing ExampleSet)."""
        if isinstance(examples, cls):
            return examples
        return cls(examples)

    def add(self, example: Example) -> bool:
        """Append if novel; returns True when the example was new."""
        key = example_key(example)
        if key in self._keys:
            return False
        self._keys.add(key)
        self._examples.append(example)
        return True

    def append(self, example: Example) -> None:
        """List-compatible spelling of :meth:`add` (duplicates dropped)."""
        self.add(example)

    def extend(self, examples: Iterable[Example]) -> None:
        for example in examples:
            self.add(example)

    def __contains__(self, example: object) -> bool:
        if not isinstance(example, dict):
            return False
        return example_key(example) in self._keys

    def __len__(self) -> int:
        return len(self._examples)

    def __iter__(self) -> Iterator[Example]:
        return iter(self._examples)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[Example, List[Example]]:
        return self._examples[index]

    def __bool__(self) -> bool:
        return bool(self._examples)

    def __repr__(self) -> str:
        return f"ExampleSet({self._examples!r})"
