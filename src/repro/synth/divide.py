"""Divide-and-conquer strategies (Section 4, Figure 4).

Each strategy inspects a problem and yields :class:`Split` objects.  A split
carries the Type-A subproblem plus a callback that, given the A-solution,
either immediately produces the parent's solution or yields the Type-B
subproblem together with a combiner (Algorithm 1 routes both cases).

Implemented strategies:

- **Subterm** (Section 4.1): synthesize an auxiliary function equivalent to a
  subexpression of the reference specification, then re-synthesize the target
  with the auxiliary function added to the grammar.
- **FixedTerm** (Section 4.2): pick a term ``e`` compared against ``f`` in the
  spec; synthesize a ``g`` that only needs to work when ``e`` does not, and
  combine as ``ite(Phi[e/f], e, g)``.
- **WeakerSpec** (Section 4.3): drop a conjunct of an invariant-style spec
  and re-attack the remainder; combine with conjunction/disjunction
  (instantiating the rule's functor ``(+)`` at ``and``/``or``, for which the
  three conditions of Definition 4.1 hold by monotonicity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.lang.ast import Kind, Term
from repro.obs import forensics
from repro.lang.builders import and_, eq, ge, implies, ite, le, not_, or_, var
from repro.lang.simplify import simplify
from repro.lang.sorts import BOOL, INT
from repro.lang.traversal import (
    app_occurrences,
    contains_app,
    free_vars,
    subexpressions,
    substitute,
    substitute_apps,
)
from repro.sygus.grammar import Grammar, InterpretedFunction
from repro.sygus.problem import SygusProblem, SynthFun
from repro.synth.config import SynthConfig

#: Result of resolving a split with an A-solution: either the parent's
#: solution body, or a Type-B problem plus a combiner for its solution.
Resolution = Union[
    Tuple[str, Term],  # ("solution", body)
    Tuple[str, SygusProblem, Callable[[Term], Term]],  # ("problem", b, combine)
]


@dataclass
class Split:
    """A divide-and-conquer division of a parent problem."""

    strategy: str
    subproblem: SygusProblem  # Type-A

    #: Maps the A-solution body to the parent's resolution.
    resolve: Callable[[Term], Optional[Resolution]] = None  # type: ignore[assignment]


def _reject(parent: SygusProblem, strategy: str, reason: str) -> None:
    """Emit a ``divide.reject`` forensics event keyed by the parent node.

    Resolvers are closures over problems, not graph nodes, so the stable
    node ID is recomputed here (lazy import — the graph module imports this
    one for :class:`Split`).
    """
    if not forensics.enabled():
        return
    from repro.synth.graph import stable_node_id

    forensics.emit(
        forensics.DIVIDE_REJECT,
        node=stable_node_id(parent),
        strategy=strategy,
        reason=reason,
    )


def propose_splits(problem: SygusProblem, config: SynthConfig) -> List[Split]:
    """All applicable divisions of ``problem``, best candidates first."""
    splits: List[Split] = []
    splits.extend(weaker_spec_splits(problem))
    splits.extend(subterm_splits(problem, config))
    splits.extend(fixed_term_splits(problem, config))
    return splits[: config.max_subproblems]


# ---------------------------------------------------------------------------
# Subterm-based division (Section 4.1)
# ---------------------------------------------------------------------------


def _candidate_subterms(problem: SygusProblem, limit: int) -> List[Term]:
    """Interesting f-free Int subterms of the spec, larger first.

    Terms that are directly compared against an invocation of ``f`` are
    excluded: synthesizing an auxiliary equal to the full right-hand side of
    the reference specification is the original problem over again.
    """
    fun_name = problem.fun_name
    excluded = set()
    for sub in subexpressions(problem.spec):
        if sub.kind in (Kind.GE, Kind.GT, Kind.LE, Kind.LT, Kind.EQ):
            left, right = sub.args
            if contains_app(left, fun_name):
                excluded.add(right)
            if contains_app(right, fun_name):
                excluded.add(left)
    seen = []
    for sub in subexpressions(problem.spec):
        if sub.sort is not INT:
            continue
        if sub.height < 2 or sub.kind is Kind.APP:
            continue
        if sub in excluded or contains_app(sub, fun_name):
            continue
        variables = free_vars(sub)
        if not variables:
            continue
        seen.append(sub)
    # Larger subterms shave more height off the parent problem.
    seen.sort(key=lambda t: (-t.size, repr(t)))
    return seen[:limit]


def subterm_splits(problem: SygusProblem, config: SynthConfig) -> List[Split]:
    """The Subterm rule: aux(y) = e' as Type-A, grammar + aux as Type-B."""
    splits: List[Split] = []
    grammar = problem.synth_fun.grammar
    if problem.synth_fun.return_sort is not INT:
        return splits
    for index, subterm in enumerate(
        _candidate_subterms(problem, config.max_subproblems)
    ):
        aux_params = tuple(sorted(free_vars(subterm), key=lambda v: v.payload))
        if len(aux_params) > len(problem.synth_fun.params):
            _reject(problem, "subterm", "aux-params-exceed")
            continue
        aux_name = f"aux{index}!{problem.fun_name}"
        aux_grammar = Grammar(
            dict(grammar.nonterminals),
            grammar.start,
            {n: list(ps) for n, ps in grammar.productions.items()},
            dict(grammar.interpreted),
            aux_params,
        )
        aux_grammar = _restrict_params(aux_grammar, problem.synth_fun.params, aux_params)
        aux_fun = SynthFun(aux_name, aux_params, INT, aux_grammar)
        aux_spec = eq(aux_fun.apply(aux_params), subterm)
        subproblem = SygusProblem(
            aux_fun,
            aux_spec,
            tuple(aux_params),
            track=problem.track,
            name=f"{problem.name}/subterm{index}",
        )
        splits.append(
            Split(
                "subterm",
                subproblem,
                _make_subterm_resolver(problem, aux_fun),
            )
        )
    return splits


def _restrict_params(
    grammar: Grammar, old_params: Tuple[Term, ...], new_params: Tuple[Term, ...]
) -> Grammar:
    """Drop parameter productions that the aux function does not receive."""
    allowed = set(new_params)
    dropped = [p for p in old_params if p not in allowed]
    productions = {
        nt: [rhs for rhs in rules if rhs not in dropped]
        for nt, rules in grammar.productions.items()
    }
    return Grammar(
        dict(grammar.nonterminals),
        grammar.start,
        productions,
        dict(grammar.interpreted),
        new_params,
    )


def _make_subterm_resolver(
    parent: SygusProblem, aux_fun: SynthFun
) -> Callable[[Term], Optional[Resolution]]:
    def resolve(aux_body: Term) -> Optional[Resolution]:
        aux_interpreted = InterpretedFunction(aux_fun.name, aux_fun.params, aux_body)
        extended = parent.synth_fun.grammar.with_interpreted(aux_interpreted)
        type_b = parent.with_grammar(extended, name_suffix="/with-aux")

        def combine(b_body: Term) -> Term:
            # Inline the auxiliary so the final solution is a member of the
            # parent's original grammar (cf. inlining (4.1) into (4.2)).
            return simplify(
                substitute_apps(b_body, aux_fun.name, aux_fun.params, aux_body)
            )

        return ("problem", type_b, combine)

    return resolve


# ---------------------------------------------------------------------------
# Fixed-term-based division (Section 4.2)
# ---------------------------------------------------------------------------


def fixed_term_splits(problem: SygusProblem, config: SynthConfig) -> List[Split]:
    """The FixedTerm rule, for single-invocation Int problems."""
    splits: List[Split] = []
    if problem.synth_fun.return_sort is not INT:
        return splits
    invocations = problem.invocations()
    if len(invocations) != 1:
        return splits
    invocation = invocations[0]
    candidates = _compared_terms(problem, invocation, config.max_subproblems)
    for index, term in enumerate(candidates):
        condition = simplify(substitute(problem.spec, {invocation: term}))
        if contains_app(condition, problem.fun_name):
            continue
        g_name = f"g{index}!{problem.fun_name}"
        g_fun = SynthFun(
            g_name,
            problem.synth_fun.params,
            INT,
            problem.synth_fun.grammar,
        )
        g_spec = or_(
            condition,
            _rename_fun(problem.spec, invocation, g_fun),
        )
        subproblem = SygusProblem(
            g_fun,
            simplify(g_spec),
            problem.variables,
            track=problem.track,
            name=f"{problem.name}/fixedterm{index}",
        )
        splits.append(
            Split(
                "fixed-term",
                subproblem,
                _make_fixed_term_resolver(problem, condition, term),
            )
        )
    return splits


def _compared_terms(
    problem: SygusProblem, invocation: Term, limit: int
) -> List[Term]:
    """Terms ``e`` with ``f(y) ~ e`` occurring in the spec (the rule's side
    condition), deduplicated, smaller first."""
    fun_name = problem.fun_name
    found: List[Term] = []
    for sub in subexpressions(problem.spec):
        if sub.kind not in (Kind.GE, Kind.GT, Kind.LE, Kind.LT, Kind.EQ):
            continue
        left, right = sub.args
        other: Optional[Term] = None
        if left is invocation:
            other = right
        elif right is invocation:
            other = left
        if other is None or contains_app(other, fun_name):
            continue
        if other.sort is not INT:
            continue
        if other not in found:
            found.append(other)
    found.sort(key=lambda t: (t.size, repr(t)))
    return found[:limit]


def _rename_fun(spec: Term, invocation: Term, g_fun: SynthFun) -> Term:
    replacement = g_fun.apply(invocation.args)
    return substitute(spec, {invocation: replacement})


def _make_fixed_term_resolver(
    parent: SygusProblem, condition: Term, term: Term
) -> Callable[[Term], Optional[Resolution]]:
    def resolve(g_body: Term) -> Optional[Resolution]:
        # Q = λy. ite(Phi[e/f], e, g(y)); the B problem is solved by
        # construction (the rule's Q synthesis has a syntactic solution in
        # any ite-capable grammar).
        body = simplify(ite(condition, term, g_body))
        if not parent.synth_fun.grammar.generates(body):
            from repro.synth.deduction import match_rewrite

            rewritten = match_rewrite(body, parent.synth_fun.grammar)
            if rewritten is None or not parent.synth_fun.grammar.generates(rewritten):
                _reject(parent, "fixed-term", "not-in-grammar")
                return None
            body = rewritten
        return ("solution", body)

    return resolve


# ---------------------------------------------------------------------------
# Weaker-spec-based division (Section 4.3)
# ---------------------------------------------------------------------------


def weaker_spec_splits(problem: SygusProblem) -> List[Split]:
    """The WeakerSpec rule instantiated at ``and``/``or`` for predicates.

    For an invariant-style spec ``Phi ∧ Delta ∧ Psi`` (pre / inductive /
    post), both ``Phi ∧ Delta`` (combine with ∧) and ``Delta ∧ Psi``
    (combine with ∨) satisfy Definition 4.1's three conditions, because
    implications into ``inv`` are closed under disjunction on the left and
    implications out of ``inv`` are closed under conjunction.
    """
    splits: List[Split] = []
    if problem.synth_fun.return_sort is not BOOL:
        return splits
    if problem.invariant is None:
        return splits
    conjuncts = _spec_conjuncts(problem.spec)
    if len(conjuncts) != 3:
        return splits
    pre_part, inductive_part, post_part = conjuncts
    splits.append(
        _weaker_split(problem, and_(pre_part, inductive_part), "and", "/weaker-pre-ind")
    )
    splits.append(
        _weaker_split(problem, and_(inductive_part, post_part), "or", "/weaker-ind-post")
    )
    return splits


def _spec_conjuncts(spec: Term) -> List[Term]:
    if spec.kind is Kind.AND:
        return list(spec.args)
    return [spec]


def _weaker_split(
    problem: SygusProblem, weaker: Term, combinator: str, suffix: str
) -> Split:
    subproblem = problem.with_spec(weaker, name_suffix=suffix)

    def resolve(p_body: Term) -> Optional[Resolution]:
        if p_body.kind is Kind.CONST:
            # A trivial A-solution (true/false) makes the B problem identical
            # to the parent: no progress, reject the division.
            _reject(problem, "weaker-spec", "trivial-a-solution")
            return None
        g_name = f"g!{problem.fun_name}"
        g_fun = SynthFun(
            g_name,
            problem.synth_fun.params,
            BOOL,
            problem.synth_fun.grammar,
        )
        params = problem.synth_fun.params

        def combined_body(g_term: Term) -> Term:
            if combinator == "and":
                return and_(p_body, g_term)
            return or_(p_body, g_term)

        g_app = g_fun.apply(params)
        # Spec for g: Phi[λy. P(y) (+) g(y) / f].
        b_spec = substitute_apps(
            problem.spec,
            problem.fun_name,
            params,
            combined_body(g_app),
        )
        type_b = SygusProblem(
            g_fun,
            simplify(b_spec),
            problem.variables,
            track=problem.track,
            name=problem.name + suffix + "/b",
            invariant=None,
        )

        def combine(g_body: Term) -> Term:
            return simplify(combined_body(g_body))

        return ("problem", type_b, combine)

    return Split("weaker-spec", subproblem, resolve)
