"""Solving multi-function SyGuS problems.

Strategy (following the paper's remark that the framework extends naturally):

1. If the constraint conjuncts partition cleanly by function, solve each
   single-function projection with the full cooperative synthesizer and
   reassemble (then verify jointly, defensively).
2. Otherwise run a *joint* fixed-height CEGIS: every function gets its own
   symbolic encoder; one SMT query per inductive step covers all unknowns of
   all functions simultaneously, heights increasing in lockstep.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.lang.ast import Kind, Term
from repro.lang.builders import and_, bool_const, int_const
from repro.lang.evaluator import EvaluationError, evaluate
from repro.lang.traversal import rewrite_bottom_up
from repro.smt.solver import SmtSolver, SolverBudgetExceeded, Status
from repro.sygus.multi import MultiSolution, MultiSygusProblem
from repro.synth.cegis import CegisTimeout
from repro.synth.examples import ExampleSet
from repro.synth.config import SynthConfig
from repro.synth.cooperative import CooperativeSynthesizer
from repro.synth.encoding import EncodingUnsupported
from repro.synth.fixed_height import make_encoder
from repro.synth.result import SynthesisStats


class MultiFunctionSynthesizer:
    """Cooperative synthesis lifted to several functions."""

    name = "dryadsynth-multi"

    def __init__(self, config: Optional[SynthConfig] = None):
        self.config = config or SynthConfig()

    def synthesize(self, problem: MultiSygusProblem):
        config = self.config
        stats = SynthesisStats()
        start = time.monotonic()
        deadline = (
            start + config.timeout if config.timeout is not None else None
        )
        bodies = self._try_independent(problem, deadline, stats)
        if bodies is None:
            try:
                bodies = self._joint_cegis(problem, deadline, stats)
            except (CegisTimeout, SolverBudgetExceeded):
                return None, stats
        if bodies is None:
            return None, stats
        elapsed = time.monotonic() - start
        return MultiSolution(problem, bodies, self.name, elapsed), stats

    # -- Route 1: independent decomposition ---------------------------------------

    def _try_independent(
        self,
        problem: MultiSygusProblem,
        deadline: Optional[float],
        stats: SynthesisStats,
    ) -> Optional[Dict[str, Term]]:
        projections = problem.split_independent()
        if projections is None:
            return None
        bodies: Dict[str, Term] = {}
        for projection in projections:
            remaining = None
            if deadline is not None:
                remaining = max(deadline - time.monotonic(), 0.5)
            config = SynthConfig(
                timeout=remaining,
                max_height=self.config.max_height,
                coeff_bound=self.config.coeff_bound,
                const_bounds=self.config.const_bounds,
            )
            outcome = CooperativeSynthesizer(config).synthesize(projection)
            stats.merge(outcome.stats)
            if outcome.solution is None:
                return None
            bodies[projection.fun_name] = outcome.solution.body
        ok, _ = problem.verify(bodies, deadline)
        return bodies if ok else None

    # -- Route 2: joint fixed-height CEGIS --------------------------------------------

    def _joint_cegis(
        self,
        problem: MultiSygusProblem,
        deadline: Optional[float],
        stats: SynthesisStats,
    ) -> Optional[Dict[str, Term]]:
        config = self.config
        examples = ExampleSet()
        for height in range(1, config.max_height + 1):
            stats.heights_tried += 1
            bodies = self._joint_fixed_height(
                problem, height, examples, deadline, stats
            )
            if bodies is not None:
                return bodies
        return None

    def _joint_fixed_height(
        self,
        problem: MultiSygusProblem,
        height: int,
        examples: List[Dict],
        deadline: Optional[float],
        stats: SynthesisStats,
    ) -> Optional[Dict[str, Term]]:
        from repro.sygus.problem import SygusProblem

        encoders = {}
        for index, fun in enumerate(problem.synth_funs):
            single = SygusProblem(
                fun, problem.spec, problem.variables, name=fun.name
            )
            try:
                encoders[fun.name] = make_encoder(
                    single, height, f"mf{height}!{index}"
                )
            except EncodingUnsupported:
                return None
        from repro.lang.traversal import subexpressions

        largest_const = 1
        for sub_term in subexpressions(problem.spec):
            if sub_term.kind is Kind.CONST and isinstance(sub_term.payload, int):
                largest_const = max(largest_const, abs(sub_term.payload))
        const_bound = min(
            (b for b in self.config.const_bounds if b >= largest_const),
            default=self.config.const_bounds[-1],
        )
        solver = SmtSolver(
            lia_node_budget=self.config.lia_node_budget, deadline=deadline
        )
        for fun in problem.synth_funs:
            solver.add(
                encoders[fun.name].static_constraints(
                    self.config.coeff_bound, const_bound
                )
            )
        for example in examples:
            solver.add(self._example_query(problem, encoders, example))
        candidates = {
            fun.name: encoders[fun.name].initial_candidate()
            for fun in problem.synth_funs
        }
        for _ in range(self.config.max_cegis_rounds):
            if deadline is not None and time.monotonic() > deadline:
                raise CegisTimeout("joint CEGIS deadline exceeded")
            ok, counterexample = problem.verify(candidates, deadline)
            if ok:
                return dict(candidates)
            assert counterexample is not None
            if examples.add(counterexample):
                solver.add(
                    self._example_query(problem, encoders, counterexample)
                )
            stats.smt_checks += 1
            result = solver.solve()
            if result.status is not Status.SAT:
                return None
            assert result.model is not None
            candidates = {
                fun.name: encoders[fun.name].decode(result.model, fun.params)
                for fun in problem.synth_funs
            }
            stats.cegis_iterations += 1
        return None

    def _example_query(
        self,
        problem: MultiSygusProblem,
        encoders: Dict[str, object],
        example: Dict,
    ) -> Term:
        """Spec on a concrete example with every app symbolically encoded."""
        side_constraints: List[Term] = []
        by_name = {fun.name: fun for fun in problem.synth_funs}

        def rewrite(t: Term) -> Term:
            if t.kind is Kind.VAR and t.payload in example:
                value = example[t.payload]
                if t.sort.name == "Int":
                    return int_const(int(value))
                return bool_const(bool(value))
            if t.kind is Kind.APP and t.payload in by_name:
                arg_values = []
                for arg in t.args:
                    try:
                        arg_values.append(int(evaluate(arg, {})))
                    except EvaluationError as exc:
                        raise EncodingUnsupported(
                            "nested synthesized calls are unsupported"
                        ) from exc
                value, side = encoders[t.payload].app_instance(arg_values)
                if side.kind is not Kind.CONST or not side.payload:
                    side_constraints.append(side)
                return value
            return t

        instantiated = rewrite_bottom_up(problem.spec, rewrite)
        return and_(instantiated, *side_constraints)
