"""The subproblem graph (Section 3.2, Definition 3.1).

A DAG whose unique source is the original problem; an edge ``P -> Q`` means
``Q`` is a Type-A subproblem of ``P`` under some divide-and-conquer strategy.
Nodes are deduplicated by specification and synth-fun signature, so a
subproblem shared between multiple parents (Figure 3's node ``R``) is solved
once and its solution propagates to every parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lang.ast import Term
from repro.sygus.problem import SygusProblem
from repro.synth.divide import Split


@dataclass(eq=False)
class Edge:
    """Parent-to-child edge: the child is the parent's Type-A subproblem."""

    parent: "Node"
    split: Split


@dataclass(eq=False)
class Node:
    """A problem node: the problem, its solution (if found), and its parents."""

    problem: SygusProblem
    incoming: List[Edge] = field(default_factory=list)
    solution: Optional[Term] = None
    examples: list = field(default_factory=list)
    expanded: bool = False
    depth: int = 0
    #: Time-slice multiplier, doubled when a slice expires without progress.
    slice_factor: float = 1.0
    #: Resumable fixed-height sessions, keyed by height (solver state
    #: survives time-slice preemption).
    sessions: dict = field(default_factory=dict)

    @property
    def solved(self) -> bool:
        return self.solution is not None


def _node_key(problem: SygusProblem) -> Tuple:
    return (
        problem.spec,
        problem.synth_fun.name,
        problem.synth_fun.params,
        problem.synth_fun.return_sort,
        problem.synth_fun.grammar.fingerprint(),
    )


class SubproblemGraph:
    """DAG of subproblems with structural node sharing."""

    def __init__(self, root_problem: SygusProblem):
        self._nodes: Dict[Tuple, Node] = {}
        self.source = Node(root_problem)
        self._nodes[_node_key(root_problem)] = self.source

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    def add_subproblem(self, parent: Node, split: Split) -> Tuple[Node, bool]:
        """Add ``split``'s Type-A subproblem under ``parent``.

        Returns ``(node, created)`` where ``created`` is False when the
        subproblem was already present (shared structure).
        """
        key = _node_key(split.subproblem)
        node = self._nodes.get(key)
        created = node is None
        if node is None:
            node = Node(split.subproblem, depth=parent.depth + 1)
            self._nodes[key] = node
        node.incoming.append(Edge(parent, split))
        return node, created

    def add_problem(self, problem: SygusProblem, depth: int) -> Tuple[Node, bool]:
        """Add a free-standing problem node (used for Type-B problems)."""
        key = _node_key(problem)
        node = self._nodes.get(key)
        created = node is None
        if node is None:
            node = Node(problem, depth=depth)
            self._nodes[key] = node
        return node, created
