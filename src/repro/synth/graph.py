"""The subproblem graph (Section 3.2, Definition 3.1).

A DAG whose unique source is the original problem; an edge ``P -> Q`` means
``Q`` is a Type-A subproblem of ``P`` under some divide-and-conquer strategy.
Nodes are deduplicated by specification and synth-fun signature, so a
subproblem shared between multiple parents (Figure 3's node ``R``) is solved
once and its solution propagates to every parent.

Every node carries a *stable* ``node_id``: a digest of the node's structural
identity (spec text, synth-fun signature, grammar shape) rather than object
identity or insertion order.  The same subproblem therefore gets the same ID
in every process and on every run, which is what lets forensics events from
parallel workers be collated into one subproblem tree by ``dryadsynth
explain``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lang.ast import Term
from repro.lang.printer import to_sexpr
from repro.obs import forensics
from repro.sygus.problem import SygusProblem
from repro.synth.divide import Split


@dataclass(eq=False)
class Edge:
    """Parent-to-child edge: the child is the parent's Type-A subproblem."""

    parent: "Node"
    split: Split


@dataclass(eq=False)
class Node:
    """A problem node: the problem, its solution (if found), and its parents."""

    problem: SygusProblem
    incoming: List[Edge] = field(default_factory=list)
    solution: Optional[Term] = None
    examples: list = field(default_factory=list)
    expanded: bool = False
    depth: int = 0
    #: Time-slice multiplier, doubled when a slice expires without progress.
    slice_factor: float = 1.0
    #: Resumable fixed-height sessions, keyed by height (solver state
    #: survives time-slice preemption).
    sessions: dict = field(default_factory=dict)
    #: Stable structural identity; identical across processes and runs.
    node_id: str = ""

    @property
    def solved(self) -> bool:
        return self.solution is not None


def _node_key(problem: SygusProblem) -> Tuple:
    return (
        problem.spec,
        problem.synth_fun.name,
        problem.synth_fun.params,
        problem.synth_fun.return_sort,
        problem.synth_fun.grammar.fingerprint(),
    )


def stable_node_id(problem: SygusProblem) -> str:
    """A process-stable digest of the node's structural identity.

    Mirrors :func:`_node_key`'s granularity (spec, synth-fun signature,
    grammar shape) but renders every component to text via ``to_sexpr``, so
    the digest does not depend on object identity, hash randomization, or
    insertion order — two workers that derive the same subproblem compute
    the same ID.
    """
    fun = problem.synth_fun
    grammar = fun.grammar
    parts = [
        to_sexpr(problem.spec),
        fun.name,
        " ".join(f"{p.payload}:{p.sort.name}" for p in fun.params),
        fun.return_sort.name,
        grammar.start,
        ";".join(f"{n}:{s.name}" for n, s in sorted(grammar.nonterminals.items())),
    ]
    for name in sorted(grammar.productions):
        rendered = "|".join(to_sexpr(rhs) for rhs in grammar.productions[name])
        parts.append(f"{name}->{rendered}")
    parts.append(",".join(sorted(grammar.interpreted)))
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()[:12]


# -- Forensics emission helpers -------------------------------------------------
#
# The graph owns node identity, so it also owns the event vocabulary that is
# keyed by it; the cooperative loop calls these at the matching lifecycle
# moments instead of formatting events itself.


def note_solved(node: "Node", how: str) -> None:
    """Record that ``node`` was solved (``how``: ``direct``/``propagated``)."""
    forensics.emit(
        forensics.GRAPH_SOLVE,
        node=node.node_id,
        fun=node.problem.synth_fun.name,
        how=how,
        depth=node.depth,
    )


def note_parked(node: "Node", height: int) -> None:
    """Record a slice-expiry preemption: the node re-enters the worklist."""
    forensics.emit(
        forensics.GRAPH_PARK,
        node=node.node_id,
        fun=node.problem.synth_fun.name,
        height=height,
        depth=node.depth,
    )


def note_freed(node: "Node", sessions: int) -> None:
    """Record that a solved node released its parked solver sessions."""
    forensics.emit(
        forensics.GRAPH_FREE,
        node=node.node_id,
        fun=node.problem.synth_fun.name,
        sessions=sessions,
        depth=node.depth,
    )


class SubproblemGraph:
    """DAG of subproblems with structural node sharing."""

    def __init__(self, root_problem: SygusProblem):
        self._nodes: Dict[Tuple, Node] = {}
        self.source = Node(root_problem, node_id=stable_node_id(root_problem))
        self._nodes[_node_key(root_problem)] = self.source
        forensics.emit(
            forensics.GRAPH_NODE,
            node=self.source.node_id,
            fun=root_problem.synth_fun.name,
            depth=0,
        )

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    def add_subproblem(self, parent: Node, split: Split) -> Tuple[Node, bool]:
        """Add ``split``'s Type-A subproblem under ``parent``.

        Returns ``(node, created)`` where ``created`` is False when the
        subproblem was already present (shared structure).
        """
        key = _node_key(split.subproblem)
        node = self._nodes.get(key)
        created = node is None
        if node is None:
            node = Node(
                split.subproblem,
                depth=parent.depth + 1,
                node_id=stable_node_id(split.subproblem),
            )
            self._nodes[key] = node
            forensics.emit(
                forensics.GRAPH_NODE,
                node=node.node_id,
                fun=split.subproblem.synth_fun.name,
                parent=parent.node_id,
                strategy=split.strategy,
                depth=node.depth,
            )
        else:
            forensics.emit(
                forensics.GRAPH_SHARE,
                node=node.node_id,
                fun=split.subproblem.synth_fun.name,
                parent=parent.node_id,
                strategy=split.strategy,
                depth=node.depth,
            )
        node.incoming.append(Edge(parent, split))
        return node, created

    def add_problem(self, problem: SygusProblem, depth: int) -> Tuple[Node, bool]:
        """Add a free-standing problem node (used for Type-B problems)."""
        key = _node_key(problem)
        node = self._nodes.get(key)
        created = node is None
        if node is None:
            node = Node(problem, depth=depth, node_id=stable_node_id(problem))
            self._nodes[key] = node
            forensics.emit(
                forensics.GRAPH_NODE,
                node=node.node_id,
                fun=problem.synth_fun.name,
                depth=depth,
            )
        return node, created
