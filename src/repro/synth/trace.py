"""Structured tracing of cooperative synthesis runs.

A :class:`SynthesisTrace` records what Algorithm 1 actually did — which
problems were deduced, how they were divided, which heights were searched,
where the solution came from — as a list of typed events.  Useful for
debugging non-trivial runs, for the ``--trace`` CLI flag, and as the
observable surface the test suite uses to assert *how* problems were solved
(not just that they were).

Since the ``repro.obs`` telemetry layer landed, the trace is a thin view
over a span-stream's instant events: ``record()`` appends an event (domain
``"trace"``) to a :class:`~repro.obs.spans.SpanRecorder` and
:attr:`events` materializes the :class:`TraceEvent` list from that stream.
By default each trace owns a private recorder, so standalone use is
unchanged; pass the ambient recorder (``SynthesisTrace(obs.active())``) to
interleave trace events with the span stream and have them land in the
``--spans-out`` export.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.obs.spans import SpanRecorder


@dataclass(frozen=True)
class TraceEvent:
    """One step of a synthesis run."""

    kind: str  # deduct | split | enum | solved | propagate | reject | smt
    problem: str
    detail: str = ""
    height: Optional[int] = None
    elapsed: float = 0.0

    def __str__(self) -> str:
        height = f" h={self.height}" if self.height is not None else ""
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.elapsed:8.3f}s] {self.kind:9s} {self.problem}{height}{detail}"


class SynthesisTrace:
    """An append-only event log with query helpers (a span-stream view)."""

    def __init__(self, recorder: Optional[SpanRecorder] = None) -> None:
        self._recorder = recorder if recorder is not None else SpanRecorder()
        #: Events restored by :meth:`from_json`; live events append after.
        self._preloaded: List[TraceEvent] = []
        #: Age of the trace at the moment it was serialized — keeps the time
        #: base intact across a JSON round-trip (events recorded after
        #: deserialization continue from here instead of restarting at 0).
        self._offset = 0.0

    def record(
        self,
        kind: str,
        problem: str,
        detail: str = "",
        height: Optional[int] = None,
    ) -> None:
        self._recorder.add_event(
            kind, domain="trace", problem=problem, detail=detail, height=height
        )

    @property
    def events(self) -> List[TraceEvent]:
        """The trace as :class:`TraceEvent`\\ s (view over the event stream)."""
        live = [
            TraceEvent(
                event.name,
                event.attrs.get("problem", ""),
                event.attrs.get("detail", ""),
                event.attrs.get("height"),
                self._offset + event.elapsed,
            )
            for event in self._recorder.events
            if event.domain == "trace"
        ]
        return self._preloaded + live

    # -- Queries ---------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def problems_deduced(self) -> List[str]:
        return [event.problem for event in self.of_kind("deduct")]

    def splits(self) -> Dict[str, List[str]]:
        """Parent problem -> list of subproblem names it was split into."""
        result: Dict[str, List[str]] = {}
        for event in self.of_kind("split"):
            result.setdefault(event.problem, []).append(event.detail)
        return result

    def heights_searched(self, problem: str) -> List[int]:
        return [
            event.height
            for event in self.of_kind("enum")
            if event.problem == problem and event.height is not None
        ]

    def solution_source(self) -> Optional[str]:
        """How the source problem's solution was obtained, if solved."""
        solved = self.of_kind("solved")
        return solved[-1].detail if solved else None

    def smt_summary(self) -> Optional[str]:
        """The run's final SMT-substrate counters, if recorded.

        A ``"rounds=... lemmas=... core_skips=... deleted=..."`` string
        emitted once per cooperative run after the main loop.
        """
        events = self.of_kind("smt")
        return events[-1].detail if events else None

    def render(self) -> str:
        return "\n".join(str(event) for event in self.events)

    # -- Serialization (shared observability format with JobResult) --------------

    def _age(self) -> float:
        """Seconds of trace lifetime, across any number of round-trips."""
        return self._offset + (time.monotonic() - self._recorder.epoch)

    def to_json(self) -> Dict:
        """Machine-readable form (the ``--trace-json`` CLI flag's payload)."""
        return {
            "format": "repro-trace/1",
            "age": round(self._age(), 6),
            "events": [asdict(event) for event in self.events],
        }

    @staticmethod
    def from_json(data: Dict) -> "SynthesisTrace":
        """Inverse of :meth:`to_json`; the original time base is preserved.

        Events recorded *after* deserialization continue from the trace's
        serialized age (falling back to the last event's timestamp for
        records written before the ``age`` field existed), so a round-trip
        never makes later events appear earlier than preserved ones.
        """
        trace = SynthesisTrace()
        trace._preloaded = [TraceEvent(**event) for event in data.get("events", [])]
        age = data.get("age")
        if age is None:
            age = max((e.elapsed for e in trace._preloaded), default=0.0)
        trace._offset = age
        return trace

    def __len__(self) -> int:
        return len(self.events)
