"""Structured tracing of cooperative synthesis runs.

A :class:`SynthesisTrace` records what Algorithm 1 actually did — which
problems were deduced, how they were divided, which heights were searched,
where the solution came from — as a list of typed events.  Useful for
debugging non-trivial runs, for the ``--trace`` CLI flag, and as the
observable surface the test suite uses to assert *how* problems were solved
(not just that they were).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One step of a synthesis run."""

    kind: str  # deduct | split | enum | solved | propagate | reject | smt
    problem: str
    detail: str = ""
    height: Optional[int] = None
    elapsed: float = 0.0

    def __str__(self) -> str:
        height = f" h={self.height}" if self.height is not None else ""
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.elapsed:8.3f}s] {self.kind:9s} {self.problem}{height}{detail}"


class SynthesisTrace:
    """An append-only event log with query helpers."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._start = time.monotonic()

    def record(
        self,
        kind: str,
        problem: str,
        detail: str = "",
        height: Optional[int] = None,
    ) -> None:
        self.events.append(
            TraceEvent(kind, problem, detail, height, time.monotonic() - self._start)
        )

    # -- Queries ---------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def problems_deduced(self) -> List[str]:
        return [event.problem for event in self.of_kind("deduct")]

    def splits(self) -> Dict[str, List[str]]:
        """Parent problem -> list of subproblem names it was split into."""
        result: Dict[str, List[str]] = {}
        for event in self.of_kind("split"):
            result.setdefault(event.problem, []).append(event.detail)
        return result

    def heights_searched(self, problem: str) -> List[int]:
        return [
            event.height
            for event in self.of_kind("enum")
            if event.problem == problem and event.height is not None
        ]

    def solution_source(self) -> Optional[str]:
        """How the source problem's solution was obtained, if solved."""
        solved = self.of_kind("solved")
        return solved[-1].detail if solved else None

    def smt_summary(self) -> Optional[str]:
        """The run's final SMT-substrate counters, if recorded.

        A ``"rounds=... lemmas=... core_skips=... deleted=..."`` string
        emitted once per cooperative run after the main loop.
        """
        events = self.of_kind("smt")
        return events[-1].detail if events else None

    def render(self) -> str:
        return "\n".join(str(event) for event in self.events)

    # -- Serialization (shared observability format with JobResult) --------------

    def to_json(self) -> Dict:
        """Machine-readable form (the ``--trace-json`` CLI flag's payload)."""
        return {
            "format": "repro-trace/1",
            "events": [asdict(event) for event in self.events],
        }

    @staticmethod
    def from_json(data: Dict) -> "SynthesisTrace":
        """Inverse of :meth:`to_json`; event timestamps are preserved."""
        trace = SynthesisTrace()
        trace.events = [TraceEvent(**event) for event in data.get("events", [])]
        return trace

    def __len__(self) -> int:
        return len(self.events)
