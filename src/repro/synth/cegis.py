"""The counterexample-guided inductive synthesis loop (Section 2.2).

:func:`cegis` is the generic loop shared by the fixed-height engine and by
the baselines: a *synthesizer callback* proposes candidates consistent with
the accumulated counterexamples; the verifier (condition 2.4, discharged by
the SMT substrate) either accepts or produces a new counterexample.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.obs import forensics
from repro.lang.ast import Term
from repro.lang.evaluator import EvaluationError, Value
from repro.smt.solver import SolverBudgetExceeded
from repro.sygus.problem import SygusProblem
from repro.synth.examples import ExampleSet

Example = Dict[str, Value]

#: Proposes a candidate consistent with the examples, or None if impossible.
InductiveSynthesizer = Callable[[List[Example]], Optional[Term]]


class CegisTimeout(Exception):
    """The CEGIS loop hit its wall-clock deadline."""


def cegis(
    problem: SygusProblem,
    ind_synth: InductiveSynthesizer,
    initial_candidate: Optional[Term] = None,
    examples: Optional[List[Example]] = None,
    max_rounds: int = 40,
    deadline: Optional[float] = None,
) -> Tuple[Optional[Term], List[Example], int]:
    """Run CEGIS; returns ``(solution or None, examples, iterations)``.

    ``examples`` is mutated in place when provided, so callers (e.g. parallel
    height search, Section 5.1) can share counterexamples across runs.

    Raises:
        CegisTimeout: when the deadline expires mid-loop.
    """
    examples = ExampleSet.wrap(examples)
    candidate = initial_candidate
    from_ind_synth = False
    if candidate is None:
        candidate = ind_synth(examples)
        from_ind_synth = True
        if candidate is None:
            return None, examples, 0
    iterations = 0
    for _ in range(max_rounds):
        iterations += 1
        forensics.emit(
            forensics.CEGIS_ITER,
            iteration=iterations,
            examples=len(examples),
        )
        _check_deadline(deadline)
        # Compiled screening: a candidate refuted by a *known* example never
        # needs the SMT validity check — reuse that example directly.
        counterexample = _screen(problem, candidate, examples)
        if counterexample is None:
            try:
                with obs.span("verify", problem=problem.name):
                    ok, counterexample = problem.verify(candidate, deadline)
            except SolverBudgetExceeded as exc:
                raise CegisTimeout(str(exc)) from exc
            if ok:
                return candidate, examples, iterations
        assert counterexample is not None
        if examples.add(counterexample):
            forensics.emit(
                forensics.CEGIS_CEX,
                iteration=iterations,
                cex=forensics.render_example(counterexample),
            )
        elif from_ind_synth:
            # ind_synth claimed consistency with this example yet the
            # verifier refutes the candidate on it: no progress is possible
            # (this indicates the candidate space is exhausted).
            return None, examples, iterations
        _check_deadline(deadline)
        try:
            with obs.span("ind_synth", problem=problem.name,
                          examples=len(examples)):
                candidate = ind_synth(examples)
        except SolverBudgetExceeded as exc:
            raise CegisTimeout(str(exc)) from exc
        from_ind_synth = True
        if candidate is None:
            return None, examples, iterations
    return None, examples, iterations


def _check_deadline(deadline: Optional[float]) -> None:
    if deadline is not None and time.monotonic() > deadline:
        raise CegisTimeout("CEGIS deadline exceeded")


def _screen(
    problem: SygusProblem, candidate: Term, examples: ExampleSet
) -> Optional[Example]:
    """A known example refuting ``candidate``, found by compiled evaluation.

    Any evaluation failure simply defers to the SMT verifier — screening is
    a fast path, never a gatekeeper."""
    try:
        violation = problem.first_violation(candidate, examples)
    except EvaluationError:
        return None
    return dict(violation) if violation is not None else None
