"""The paper's adapted ``interpret_h`` for operator grammars (Section 5.2).

For a grammar like ``G_qm`` — one Int nonterminal closed under ``+``/``-``
with extra interpreted operators such as ``qm`` — the paper interprets a
fixed-height tree whose *internal nodes apply the grammar's operators* and
whose *leaves are affine vectors* ``c . x + d`` (the Figure 6 representation
adapted to ``qm`` in the text).  This is dramatically more compact than a
raw production tree: the affine closure of ``+``/``-`` collapses all the
bookkeeping levels of the derivation.

Every node value here is ``c_v . x + d_v + sum_j t_j`` where each ``t_j`` is
``-u_j``, ``0`` or ``+u_j`` (one-hot weight selectors) and ``u_j`` applies a
selected interpreted operator to the child values.  On a concrete input
vector everything is linear in the unknowns, so inductive synthesis stays a
single QF_LIA query.

Grammar membership is preserved because integer-coefficient affine forms are
derivable via repeated addition/subtraction in any grammar closed under
``+``/``-`` with the constants 0 and 1 (``decode`` rebuilds terms that are
literal grammar members).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.ast import Kind, Term
from repro.lang.builders import (
    add,
    and_,
    bool_var,
    eq,
    ge,
    implies,
    int_const,
    int_var,
    le,
    mul,
    neg,
    not_,
    or_,
    sub,
    true,
)
from repro.lang.simplify import simplify
from repro.lang.sorts import INT
from repro.sygus.grammar import (
    Grammar,
    InterpretedFunction,
    expand_interpreted,
    is_any_const_ref,
    is_nonterminal_ref,
)
from repro.sygus.problem import SynthFun
from repro.synth.encoding import EncodingUnsupported


def affine_operator_view(grammar: Grammar) -> Optional[List[InterpretedFunction]]:
    """If the grammar is a single Int nonterminal closed under +/- with
    interpreted operators, return those operators; otherwise None."""
    if len(grammar.nonterminals) != 1:
        return None
    (nt_name, nt_sort), = grammar.nonterminals.items()
    if nt_sort is not INT:
        return None
    rules = grammar.productions.get(nt_name, [])
    has_add = has_sub = has_one = has_zero = False
    operators: List[InterpretedFunction] = []
    params = set(grammar.params)
    for rhs in rules:
        if is_any_const_ref(rhs):
            has_one = has_zero = True
        elif rhs.kind is Kind.CONST:
            if rhs.payload == 1:
                has_one = True
            elif rhs.payload == 0:
                has_zero = True
        elif rhs.kind is Kind.VAR and rhs in params:
            continue
        elif rhs.kind is Kind.ADD and all(is_nonterminal_ref(a) for a in rhs.args):
            has_add = True
        elif rhs.kind is Kind.SUB and all(is_nonterminal_ref(a) for a in rhs.args):
            has_sub = True
        elif rhs.kind is Kind.APP and all(is_nonterminal_ref(a) for a in rhs.args):
            func = grammar.interpreted.get(rhs.payload)  # type: ignore[arg-type]
            if func is None:
                return None
            operators.append(func)
        else:
            return None
    if not (has_add and has_sub and has_one and has_zero):
        return None
    int_params = [p for p in grammar.params if p.sort is INT]
    if not all(any(r is p for r in rules) for p in int_params):
        return None
    if not operators:
        return None
    return operators


class AffineSpineEncoder:
    """Fixed-height encoder: operator applications over affine leaves."""

    #: Constant bounds matter (the d unknowns).
    has_const_unknowns = True

    def __init__(self, synth_fun: SynthFun, height: int, prefix: str = "af"):
        operators = affine_operator_view(synth_fun.grammar)
        if operators is None:
            raise EncodingUnsupported("grammar is not an affine operator grammar")
        if synth_fun.return_sort is not INT:
            raise EncodingUnsupported("affine encoding requires an Int synth-fun")
        self.synth_fun = synth_fun
        self.grammar = synth_fun.grammar
        self.operators = operators
        self.height = height
        self.prefix = prefix
        self.arity = max(op.arity for op in operators)
        self.ops_per_node = 1  # one operator application per internal node
        self.num_nodes = self._count_nodes()
        self._instances = 0

    def _count_nodes(self) -> int:
        k = self.arity
        if k == 1:
            return self.height
        return (k**self.height - 1) // (k - 1)

    def _children(self, node: int) -> List[int]:
        return [self.arity * node + 1 + j for j in range(self.arity)]

    def _is_internal(self, node: int) -> bool:
        return self.arity * node + 1 < self.num_nodes

    # -- Unknowns -----------------------------------------------------------------

    def _coeff(self, node: int, param_index: int) -> Term:
        return int_var(f"{self.prefix}!c{node}_{param_index}")

    def _const(self, node: int) -> Term:
        return int_var(f"{self.prefix}!d{node}")

    def _weight_pos(self, node: int) -> Term:
        return bool_var(f"{self.prefix}!wp{node}")

    def _weight_neg(self, node: int) -> Term:
        return bool_var(f"{self.prefix}!wn{node}")

    def _op_selector(self, node: int, op_index: int) -> Term:
        return bool_var(f"{self.prefix}!o{node}_{op_index}")

    def unknowns(self) -> List[Term]:
        result: List[Term] = []
        for node in range(self.num_nodes):
            for j in range(len(self.synth_fun.params)):
                result.append(self._coeff(node, j))
            result.append(self._const(node))
        return result

    def static_constraints(self, coeff_bound: int, const_bound: int) -> Term:
        parts: List[Term] = []
        for node in range(self.num_nodes):
            for j in range(len(self.synth_fun.params)):
                c = self._coeff(node, j)
                parts.append(ge(c, -coeff_bound))
                parts.append(le(c, coeff_bound))
            d = self._const(node)
            parts.append(ge(d, -const_bound))
            parts.append(le(d, const_bound))
            if self._is_internal(node):
                parts.append(
                    or_(not_(self._weight_pos(node)), not_(self._weight_neg(node)))
                )
                selectors = [
                    self._op_selector(node, i) for i in range(len(self.operators))
                ]
                parts.append(or_(*selectors))
                for i in range(len(selectors)):
                    for j in range(i + 1, len(selectors)):
                        parts.append(or_(not_(selectors[i]), not_(selectors[j])))
        return and_(*parts)

    # -- Symbolic interpretation -----------------------------------------------------

    def app_instance(self, arg_values: Sequence[int]) -> Tuple[Term, Term]:
        if len(arg_values) != len(self.synth_fun.params):
            raise ValueError("wrong number of argument values")
        instance = self._instances
        self._instances += 1
        parts: List[Term] = []

        def value_var(node: int) -> Term:
            return int_var(f"{self.prefix}!v{node}_{instance}")

        def op_var(node: int) -> Term:
            return int_var(f"{self.prefix}!u{node}_{instance}")

        for node in range(self.num_nodes):
            affine_parts: List[Term] = []
            for j, concrete in enumerate(arg_values):
                if concrete == 0:
                    continue
                coeff = self._coeff(node, j)
                affine_parts.append(
                    coeff if concrete == 1 else mul(int(concrete), coeff)
                )
            affine_parts.append(self._const(node))
            affine = add(*affine_parts) if len(affine_parts) > 1 else affine_parts[0]
            value = value_var(node)
            if not self._is_internal(node):
                parts.append(eq(value, affine))
                continue
            u = op_var(node)
            children = self._children(node)
            for op_index, op in enumerate(self.operators):
                child_values = [value_var(children[j]) for j in range(op.arity)]
                applied = expand_interpreted(
                    op.instantiate(child_values), self.grammar.interpreted
                )
                parts.append(implies(self._op_selector(node, op_index), eq(u, applied)))
            wp, wn = self._weight_pos(node), self._weight_neg(node)
            parts.append(implies(and_(not_(wp), not_(wn)), eq(value, affine)))
            parts.append(implies(wp, eq(value, add(affine, u))))
            parts.append(implies(wn, eq(value, sub(affine, u))))
        return int_var(f"{self.prefix}!v0_{instance}"), and_(*parts)

    # -- Decoding ---------------------------------------------------------------------

    def decode(self, model: Dict[str, int], params: Sequence[Term]) -> Term:
        substitution = dict(zip(self.synth_fun.params, params))

        def affine_term(node: int) -> Optional[Term]:
            parts: List[Term] = []
            for j, param in enumerate(self.synth_fun.params):
                coeff = int(model.get(f"{self.prefix}!c{node}_{j}", 0))
                target = substitution[param]
                parts.extend(_repeat(target, coeff))
            constant = int(model.get(f"{self.prefix}!d{node}", 0))
            parts.extend(_repeat(int_const(1), constant))
            if not parts:
                return None
            return _chain_add(parts)

        def node_term(node: int) -> Term:
            affine = affine_term(node)
            if not self._is_internal(node):
                return affine if affine is not None else int_const(0)
            wp = model.get(f"{self.prefix}!wp{node}", False)
            wn = model.get(f"{self.prefix}!wn{node}", False)
            if not wp and not wn:
                return affine if affine is not None else int_const(0)
            op_index = 0
            for i in range(len(self.operators)):
                if model.get(f"{self.prefix}!o{node}_{i}", False):
                    op_index = i
                    break
            op = self.operators[op_index]
            children = self._children(node)
            from repro.lang.builders import apply_fn

            applied = apply_fn(
                op.name,
                [node_term(children[j]) for j in range(op.arity)],
                INT,
            )
            if wp:
                return applied if affine is None else add(affine, applied)
            base = affine if affine is not None else int_const(0)
            return sub(base, applied)

        return simplify(node_term(0))

    def initial_candidate(self) -> Term:
        return int_const(0)


def _repeat(term: Term, count: int) -> List[Term]:
    """``count`` copies of ``term`` (negated copies for negative counts)."""
    if count >= 0:
        return [term] * count
    return [neg(term)] * (-count)


def _chain_add(parts: List[Term]) -> Term:
    """Fold parts with binary +/-, staying inside grammars without n-ary +.

    Negations introduced by :func:`_repeat` are turned into subtractions.
    """
    positives = [p for p in parts if p.kind is not Kind.NEG]
    negatives = [p.args[0] for p in parts if p.kind is Kind.NEG]
    if positives:
        result = positives[0]
        for p in positives[1:]:
            result = add(result, p)
    else:
        result = int_const(0)
    for n in negatives:
        result = sub(result, n)
    return result
