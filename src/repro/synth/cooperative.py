"""Cooperative synthesis — Algorithm 1 (Section 3.3).

The solver keeps a subproblem graph, a deduction queue and a height-priority
enumeration queue.  Deduction always has priority; problems it cannot finish
are divided (Section 4) and also handed to the fixed-height enumerative
engine, one height at a time.  Solutions to Type-A subproblems transform
their parents into Type-B subproblems, whose solutions combine back into
parent solutions, all the way up to the source.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import time
from collections import deque
from typing import Callable, List, Optional

logger = logging.getLogger(__name__)

from repro import obs
from repro.obs import forensics
from repro.obs.log import jlog
from repro.lang.ast import Term
from repro.smt.solver import SolverBudgetExceeded
from repro.sygus.problem import Solution, SygusProblem
from repro.synth.cegis import CegisTimeout
from repro.synth.config import SynthConfig
from repro.synth.deduction import Deducer
from repro.synth.divide import Split, propose_splits
from repro.synth.encoding import EncodingUnsupported
from repro.synth.fixed_height import fixed_height
from repro.synth.graph import (
    Edge,
    Node,
    SubproblemGraph,
    note_freed,
    note_parked,
    note_solved,
)
from repro.synth.result import SynthesisOutcome, SynthesisStats

#: Signature of a pluggable enumerative engine: returns a candidate body of
#: height (or size class) ``height`` consistent with the problem, or None.
EnumEngine = Callable[..., Optional[Term]]

#: Maximum divide-and-conquer depth (splits of splits).
_MAX_SPLIT_DEPTH = 2


def _default_enum_engine(
    problem: SygusProblem,
    height: int,
    examples: list,
    config: SynthConfig,
    deadline: Optional[float],
    stats: SynthesisStats,
    session_store: Optional[dict] = None,
) -> Optional[Term]:
    return fixed_height(
        problem,
        height,
        config,
        examples=examples,
        deadline=deadline,
        stats=stats,
        session_store=session_store,
    )


class CooperativeSynthesizer:
    """DryadSynth: deduction + divide-and-conquer + height enumeration."""

    def __init__(
        self,
        config: Optional[SynthConfig] = None,
        enum_engine: Optional[EnumEngine] = None,
        name: str = "dryadsynth",
        trace: Optional["SynthesisTrace"] = None,
    ) -> None:
        import inspect

        self.config = config or SynthConfig()
        self.enum_engine = enum_engine or _default_enum_engine
        self.name = name
        self.trace = trace
        self._engine_takes_sessions = (
            "session_store" in inspect.signature(self.enum_engine).parameters
        )

    def _record(self, kind: str, problem_name: str, detail: str = "", height=None):
        if self.trace is not None:
            self.trace.record(kind, problem_name, detail, height)

    # -- Main loop (Algorithm 1) -------------------------------------------------

    def synthesize(self, problem: SygusProblem) -> SynthesisOutcome:
        """Run Algorithm 1; the whole run is a ``synth`` telemetry span."""
        jlog(logger, "synth.start", problem=problem.name, solver=self.name,
             timeout=self.config.timeout)
        with obs.span(
            "synth", problem=problem.name, solver=self.name
        ) as root_span:
            outcome = self._synthesize_impl(problem)
            root_span.set(
                solved=outcome.solved, timed_out=outcome.timed_out
            )
        if obs.enabled():
            obs.publish_stats(outcome.stats)
        jlog(logger, "synth.end", problem=problem.name,
             solved=outcome.solved, timed_out=outcome.timed_out,
             smt_rounds=outcome.stats.smt_rounds,
             heights_tried=outcome.stats.heights_tried)
        return outcome

    def _synthesize_impl(self, problem: SygusProblem) -> SynthesisOutcome:
        config = self.config
        stats = SynthesisStats()
        start = time.monotonic()
        deadline = start + config.timeout if config.timeout is not None else None
        graph = SubproblemGraph(problem)
        ded_queue: deque = deque([graph.source])
        enum_queue: List = []
        counter = itertools.count()
        timed_out = False

        def enqueue_enum(node: Node, height: int) -> None:
            heapq.heappush(enum_queue, (height, next(counter), node))

        try:
            while not graph.source.solved:
                if deadline is not None and time.monotonic() > deadline:
                    timed_out = True
                    break
                if ded_queue:
                    node = ded_queue.popleft()
                    if node.solved:
                        continue
                    logger.debug("deduct: %s", node.problem.name)
                    self._record("deduct", node.problem.name)
                    with obs.span(
                        "deduct", problem=node.problem.name, node=node.node_id
                    ):
                        self._deduction_step(node, graph, ded_queue, stats, deadline)
                    if not node.solved:
                        enqueue_enum(node, 1)
                elif enum_queue:
                    height, _, node = heapq.heappop(enum_queue)
                    if node.solved:
                        continue
                    stats.heights_tried += 1
                    stats.max_height_reached = max(stats.max_height_reached, height)
                    step_start = time.monotonic()
                    with obs.span(
                        "enum",
                        problem=node.problem.name,
                        height=height,
                        node=node.node_id,
                    ) as enum_span:
                        body, exhausted = self._enum_step(
                            node, height, stats, deadline
                        )
                        step_outcome = (
                            "hit" if body is not None else (
                                "miss" if exhausted else "preempted"
                            )
                        )
                        enum_span.set(outcome=step_outcome)
                    logger.debug(
                        "enum h=%d %s -> %s (%.2fs)",
                        height,
                        node.problem.name,
                        step_outcome,
                        time.monotonic() - step_start,
                    )
                    self._record("enum", node.problem.name, step_outcome, height)
                    if body is not None:
                        self._mark_solved(node, body, graph, ded_queue, stats, deadline)
                    elif not exhausted:
                        # Time slice expired: yield to other subproblems and
                        # come back to the same height later.
                        note_parked(node, height)
                        enqueue_enum(node, height)
                    elif height < config.max_height:
                        enqueue_enum(node, height + 1)
                else:
                    break
        except (CegisTimeout, SolverBudgetExceeded):
            timed_out = True
        self._record(
            "smt",
            problem.name,
            detail=(
                f"rounds={stats.smt_rounds} lemmas={stats.theory_lemmas} "
                f"core_skips={stats.assumption_core_skips} "
                f"deleted={stats.learnt_clauses_deleted}"
            ),
        )
        if graph.source.solved:
            body = graph.source.solution
            if config.minimize_solutions:
                from repro.synth.minimize import minimize_solution

                try:
                    with obs.span(
                        "minimize",
                        problem=problem.name,
                        node=graph.source.node_id,
                    ):
                        body = minimize_solution(
                            problem, body, config.minimize_budget, deadline
                        )
                except SolverBudgetExceeded:
                    pass
            elapsed = time.monotonic() - start
            solution = Solution(problem, body, self.name, elapsed)
            return SynthesisOutcome(solution, stats)
        return SynthesisOutcome(None, stats, timed_out=timed_out)

    # -- Steps -------------------------------------------------------------------------

    def _deduction_step(
        self,
        node: Node,
        graph: SubproblemGraph,
        ded_queue: deque,
        stats: SynthesisStats,
        deadline: Optional[float],
    ) -> None:
        config = self.config
        if config.enable_deduction:
            deducer = Deducer(node.problem, stats)
            result = deducer.deduct()
            if result.solution is not None:
                self._mark_solved(
                    node, result.solution, graph, ded_queue, stats, deadline
                )
                return
            if result.unsolvable:
                node.expanded = True
                return
            if result.simplified_spec is not None:
                node.problem = node.problem.with_spec(result.simplified_spec)
        if (
            config.enable_divide
            and not node.expanded
            and node.depth < _MAX_SPLIT_DEPTH
        ):
            node.expanded = True
            for split in propose_splits(node.problem, config):
                child, created = graph.add_subproblem(node, split)
                stats.subproblems_created += int(created)
                self._record(
                    "split",
                    node.problem.name,
                    f"{split.strategy}:{split.subproblem.name}",
                )
                forensics.emit(
                    forensics.DIVIDE_CHOICE,
                    node=node.node_id,
                    strategy=split.strategy,
                    child=child.node_id,
                    created=created,
                )
                if created:
                    ded_queue.append(child)
                elif child.solved:
                    # Shared subproblem already solved: propagate to us now.
                    self._propagate(child, graph, ded_queue, stats, deadline)

    def _enum_step(
        self,
        node: Node,
        height: int,
        stats: SynthesisStats,
        deadline: Optional[float],
    ):
        """One fixed-height attempt; returns ``(body, exhausted)``.

        ``exhausted`` is True when the height was fully explored (no solution
        exists there) and False when the per-step time slice preempted the
        search.
        """
        slice_deadline = deadline
        if self.config.enum_slice is not None:
            step_limit = time.monotonic() + self.config.enum_slice * node.slice_factor
            slice_deadline = (
                min(deadline, step_limit) if deadline is not None else step_limit
            )
        examples_before = len(node.examples)
        try:
            kwargs = {}
            if self._engine_takes_sessions:
                kwargs["session_store"] = node.sessions
            body = self.enum_engine(
                node.problem,
                height,
                node.examples,
                self.config,
                slice_deadline,
                stats,
                **kwargs,
            )
            node.slice_factor = 1.0
            return body, True
        except EncodingUnsupported:
            return None, True
        except (CegisTimeout, SolverBudgetExceeded):
            if deadline is not None and time.monotonic() > deadline:
                raise
            if len(node.examples) == examples_before:
                # No progress inside the slice: give the retry twice the time
                # so a single long SMT call can eventually complete.
                node.slice_factor *= 2.0
            else:
                node.slice_factor = 1.0
            return None, False

    # -- Solution propagation ---------------------------------------------------------------

    def _mark_solved(
        self,
        node: Node,
        body: Term,
        graph: SubproblemGraph,
        ded_queue: deque,
        stats: SynthesisStats,
        deadline: Optional[float],
        verified: bool = False,
        how: str = "direct",
    ) -> None:
        if node.solved:
            return
        # Defense in depth: never accept an unverified body, whatever engine
        # produced it (pluggable engines may only be example-consistent).
        if not verified and not self._accept(node, body, deadline):
            logger.debug("rejected unverified candidate for %s", node.problem.name)
            self._record("reject", node.problem.name)
            forensics.emit(
                forensics.DIVIDE_REJECT,
                node=node.node_id,
                reason="unverified-candidate",
            )
            return
        node.solution = body
        stats.subproblems_solved += 1
        jlog(logger, "synth.subproblem_solved", problem=node.problem.name)
        note_solved(node, how)
        # A solved node never enumerates again: release its parked
        # incremental solver sessions (clause DBs, atom tables) right away
        # instead of holding them until the whole run finishes.
        if node.sessions:
            note_freed(node, len(node.sessions))
        node.sessions.clear()
        self._record("solved", node.problem.name, detail="direct")
        self._propagate(node, graph, ded_queue, stats, deadline)

    def _propagate(
        self,
        node: Node,
        graph: SubproblemGraph,
        ded_queue: deque,
        stats: SynthesisStats,
        deadline: Optional[float],
    ) -> None:
        """Turn parents of a solved Type-A node into Type-B subproblems."""
        assert node.solution is not None
        for edge in list(node.incoming):
            parent = edge.parent
            if parent.solved:
                continue
            resolution = edge.split.resolve(node.solution)
            if resolution is None:
                # The resolver emitted its own divide.reject with the
                # specific reason (trivial-a-solution, not-in-grammar, ...).
                continue
            if resolution[0] == "solution":
                candidate = resolution[1]
                self._mark_solved(
                    parent, candidate, graph, ded_queue, stats, deadline,
                    how="propagated",
                )
                continue
            _, b_problem, combine = resolution
            b_node, created = graph.add_problem(b_problem, parent.depth + 1)
            b_node.incoming.append(
                Edge(parent, _combiner_split(b_problem, combine))
            )
            if created:
                ded_queue.append(b_node)
            elif b_node.solved:
                self._propagate(b_node, graph, ded_queue, stats, deadline)

    def _accept(
        self, node: Node, candidate: Term, deadline: Optional[float]
    ) -> bool:
        """Defensive verification of a combined solution."""
        try:
            with obs.span(
                "verify", problem=node.problem.name, accept=True,
                node=node.node_id,
            ):
                ok, _ = node.problem.verify(candidate, deadline)
        except SolverBudgetExceeded:
            return False
        return ok


def _combiner_split(b_problem: SygusProblem, combine: Callable[[Term], Term]) -> Split:
    """A synthetic split whose resolution applies the Type-B combiner."""

    def resolve(b_body: Term):
        return ("solution", combine(b_body))

    return Split("type-b", b_problem, resolve)


def solve(
    problem: SygusProblem,
    config: Optional[SynthConfig] = None,
) -> SynthesisOutcome:
    """Solve a SyGuS problem with the full cooperative synthesizer."""
    return CooperativeSynthesizer(config).synthesize(problem)
