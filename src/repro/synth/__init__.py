"""The paper's primary contribution: cooperative synthesis (DryadSynth).

Submodules:

- :mod:`repro.synth.cegis` — the CEGIS loop (Section 2.2).
- :mod:`repro.synth.decision_tree` — decision-tree normal form (Figure 5).
- :mod:`repro.synth.encoding` — symbolic fixed-height encodings (Section 5.2).
- :mod:`repro.synth.fixed_height` — Algorithm 2 and height enumeration.
- :mod:`repro.synth.deduction` — deductive rules (Figures 7 and 8).
- :mod:`repro.synth.loop_summary` — fast-trans loop summarisation (Section 6).
- :mod:`repro.synth.divide` — divide-and-conquer strategies (Figure 4).
- :mod:`repro.synth.graph` — the subproblem graph (Section 3.2).
- :mod:`repro.synth.cooperative` — Algorithm 1, the cooperative loop.
- :mod:`repro.synth.parallel` — parallel height search (Section 5.1).
"""

from repro.synth.config import SynthConfig
from repro.synth.cooperative import CooperativeSynthesizer, solve
from repro.synth.fixed_height import (
    FixedHeightSession,
    HeightEnumerationSynthesizer,
)
from repro.synth.parallel import ParallelHeightSynthesizer
from repro.synth.result import SynthesisOutcome, SynthesisStats
from repro.synth.trace import SynthesisTrace

__all__ = [
    "SynthConfig",
    "CooperativeSynthesizer",
    "solve",
    "FixedHeightSession",
    "HeightEnumerationSynthesizer",
    "ParallelHeightSynthesizer",
    "SynthesisOutcome",
    "SynthesisStats",
    "SynthesisTrace",
]
