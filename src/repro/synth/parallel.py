"""Parallel height enumeration (Section 5.1).

The paper runs the fixed-height CEGIS loop at ``n`` different heights on
``n`` threads, sharing the counterexample set, and maintains the next height
``k`` to be claimed when a thread concludes its height is unsolvable.  This
module reproduces that scheme with two backends:

- ``backend="thread"`` (default): the original thread pool.  Under CPython's
  GIL the threads interleave rather than truly parallelise (the SMT
  substrate is pure Python); the scheme is still exercised by the test
  suite for correctness (shared counterexamples, first-finisher-wins,
  height claiming).
- ``backend="process"``: heights race as jobs on a
  :class:`~repro.service.pool.WorkerPool` of OS processes — real
  parallelism, crash isolation and parent-enforced deadlines.  Candidates
  cross the process boundary as serialized SyGuS text, so counterexamples
  are per-worker rather than shared; height claiming falls out of the
  pool's scheduling (``width`` workers, one queued job per height).
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.lang.ast import Term
from repro.smt.solver import SolverBudgetExceeded
from repro.sygus.problem import Solution, SygusProblem
from repro.synth.cegis import CegisTimeout, Example
from repro.synth.config import SynthConfig
from repro.synth.examples import ExampleSet
from repro.synth.encoding import EncodingUnsupported
from repro.synth.fixed_height import fixed_height
from repro.synth.result import SynthesisOutcome, SynthesisStats


class _SharedExamples:
    """A counterexample pool shared between height workers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._examples = ExampleSet()

    def snapshot(self) -> List[Example]:
        with self._lock:
            return list(self._examples)

    def merge(self, examples: List[Example]) -> None:
        with self._lock:
            for example in examples:
                self._examples.add(example)


class ParallelHeightSynthesizer:
    """Height enumeration with ``width`` concurrent height workers."""

    name = "height-enum-parallel"

    def __init__(
        self,
        config: Optional[SynthConfig] = None,
        width: int = 2,
        backend: str = "thread",
    ):
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        self.config = config or SynthConfig()
        self.width = max(1, width)
        self.backend = backend

    def synthesize(self, problem: SygusProblem) -> SynthesisOutcome:
        if self.backend == "process":
            return self._synthesize_process(problem)
        return self._synthesize_threaded(problem)

    # -- Thread backend ---------------------------------------------------------

    def _synthesize_threaded(self, problem: SygusProblem) -> SynthesisOutcome:
        config = self.config
        stats = SynthesisStats()
        start = time.monotonic()
        deadline = start + config.timeout if config.timeout is not None else None
        shared = _SharedExamples()
        state = {
            "solution": None,
            "next_height": self.width + 1,
            "timed_out": False,
        }
        state_lock = threading.Lock()

        def worker(initial_height: int) -> None:
            # Each worker owns a private stats object, merged under the lock
            # when it finishes: ``fixed_height`` mutates stats freely, so a
            # shared object would race.
            local_stats = SynthesisStats()
            try:
                height = initial_height
                while height <= config.max_height:
                    with state_lock:
                        if state["solution"] is not None:
                            return
                    local_stats.heights_tried += 1
                    local_stats.max_height_reached = max(
                        local_stats.max_height_reached, height
                    )
                    local_examples = shared.snapshot()
                    try:
                        body = fixed_height(
                            problem,
                            height,
                            config,
                            examples=local_examples,
                            deadline=deadline,
                            stats=local_stats,
                            prefix=f"ph{height}",
                        )
                    except (CegisTimeout, SolverBudgetExceeded):
                        with state_lock:
                            state["timed_out"] = True
                        return
                    except EncodingUnsupported:
                        return
                    shared.merge(local_examples)
                    with state_lock:
                        if body is not None:
                            if state["solution"] is None:
                                state["solution"] = body
                            return
                        height = state["next_height"]
                        state["next_height"] += 1
            finally:
                with state_lock:
                    stats.merge(local_stats)

        threads = [
            threading.Thread(target=worker, args=(h,), daemon=True)
            for h in range(1, self.width + 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if state["solution"] is not None:
            elapsed = time.monotonic() - start
            return SynthesisOutcome(
                Solution(problem, state["solution"], self.name, elapsed), stats
            )
        return SynthesisOutcome(None, stats, timed_out=bool(state["timed_out"]))

    # -- Process backend --------------------------------------------------------

    def _synthesize_process(self, problem: SygusProblem) -> SynthesisOutcome:
        from repro.service.jobs import TIMEOUT, SynthesisJob, parse_solution_text
        from repro.service.pool import WorkerPool

        config = self.config
        start = time.monotonic()
        jobs = [
            SynthesisJob.from_problem(
                problem,
                solver=f"fixed-height@{height}",
                config=config,
                name=f"{problem.name}@h{height}",
            )
            for height in range(1, config.max_height + 1)
        ]
        with WorkerPool(workers=self.width) as pool:
            winner, results = pool.race(jobs)
        stats = SynthesisStats()
        for result in results:
            if result.stats:
                stats.merge(SynthesisStats.from_json(result.stats))
        if winner is not None and winner.solution_text:
            body = parse_solution_text(problem, winner.solution_text)
            elapsed = time.monotonic() - start
            return SynthesisOutcome(
                Solution(problem, body, self.name, elapsed), stats
            )
        timed_out = any(r.status == TIMEOUT for r in results)
        return SynthesisOutcome(None, stats, timed_out=timed_out)
