"""Parallel height enumeration (Section 5.1).

The paper runs the fixed-height CEGIS loop at ``n`` different heights on
``n`` threads, sharing the counterexample set, and maintains the next height
``k`` to be claimed when a thread concludes its height is unsolvable.  This
module reproduces that scheme with a thread pool.  Under CPython's GIL the
threads interleave rather than truly parallelise (the SMT substrate is pure
Python), so the default benchmark configuration uses width 1; the scheme is
still exercised by the test suite for correctness (shared counterexamples,
first-finisher-wins, height claiming).
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.lang.ast import Term
from repro.smt.solver import SolverBudgetExceeded
from repro.sygus.problem import Solution, SygusProblem
from repro.synth.cegis import CegisTimeout, Example
from repro.synth.config import SynthConfig
from repro.synth.encoding import EncodingUnsupported
from repro.synth.fixed_height import fixed_height
from repro.synth.result import SynthesisOutcome, SynthesisStats


class _SharedExamples:
    """A counterexample pool shared between height workers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._examples: List[Example] = []

    def snapshot(self) -> List[Example]:
        with self._lock:
            return list(self._examples)

    def merge(self, examples: List[Example]) -> None:
        with self._lock:
            for example in examples:
                if example not in self._examples:
                    self._examples.append(example)


class ParallelHeightSynthesizer:
    """Height enumeration with ``width`` concurrent height workers."""

    name = "height-enum-parallel"

    def __init__(self, config: Optional[SynthConfig] = None, width: int = 2):
        self.config = config or SynthConfig()
        self.width = max(1, width)

    def synthesize(self, problem: SygusProblem) -> SynthesisOutcome:
        config = self.config
        stats = SynthesisStats()
        start = time.monotonic()
        deadline = start + config.timeout if config.timeout is not None else None
        shared = _SharedExamples()
        state = {
            "solution": None,
            "next_height": self.width + 1,
            "timed_out": False,
        }
        state_lock = threading.Lock()

        def worker(initial_height: int) -> None:
            height = initial_height
            while height <= config.max_height:
                with state_lock:
                    if state["solution"] is not None:
                        return
                    stats.heights_tried += 1
                    stats.max_height_reached = max(
                        stats.max_height_reached, height
                    )
                local_examples = shared.snapshot()
                try:
                    body = fixed_height(
                        problem,
                        height,
                        config,
                        examples=local_examples,
                        deadline=deadline,
                        stats=stats,
                        prefix=f"ph{height}",
                    )
                except (CegisTimeout, SolverBudgetExceeded):
                    with state_lock:
                        state["timed_out"] = True
                    return
                except EncodingUnsupported:
                    return
                shared.merge(local_examples)
                with state_lock:
                    if body is not None:
                        if state["solution"] is None:
                            state["solution"] = body
                        return
                    height = state["next_height"]
                    state["next_height"] += 1

        threads = [
            threading.Thread(target=worker, args=(h,), daemon=True)
            for h in range(1, self.width + 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if state["solution"] is not None:
            elapsed = time.monotonic() - start
            return SynthesisOutcome(
                Solution(problem, state["solution"], self.name, elapsed), stats
            )
        return SynthesisOutcome(None, stats, timed_out=bool(state["timed_out"]))
