"""Symbolic candidate encodings for fixed-height synthesis (Section 5.2).

Two encoders implement a common duck-typed interface:

- :class:`CliaTreeEncoder` — the decision-tree-normal-form encoding for the
  full CLIA grammar (Figures 5 and 6): a candidate is a vector of unknown
  integer coefficients; interpreting it on a concrete input is linear in the
  unknowns, so each CEGIS inductive query is one QF_LIA SMT call.

- :class:`GeneralGrammarEncoder` — the paper's "extension to general
  grammar": a full k-ary tree whose nodes carry integer *selector* unknowns
  choosing a production of the user grammar; node values on a concrete input
  are defined by guarded equations, again QF_LIA.

The interface:

``unknowns()``            -> list of unknown variables
``static_constraints(b)`` -> Term bounding/structuring unknowns
``app_instance(values)``  -> symbolic Term for ``f(values)``
``decode(model, params)`` -> candidate body Term
``initial_candidate()``   -> a syntactically valid starter candidate
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.ast import Kind, Term
from repro.lang.builders import (
    add,
    and_,
    bool_var,
    eq,
    ge,
    iff,
    implies,
    int_const,
    int_var,
    ite,
    le,
    not_,
    or_,
)
from repro.lang.simplify import simplify
from repro.lang.sorts import BOOL, INT, Sort
from repro.lang.traversal import substitute
from repro.sygus.grammar import (
    Grammar,
    is_any_const_ref,
    is_nonterminal_ref,
    ref_name,
)
from repro.sygus.problem import SynthFun
from repro.synth.decision_tree import TreeShape


class EncodingUnsupported(Exception):
    """The grammar cannot be encoded symbolically (e.g. nonlinear ops)."""


def grammar_is_full_clia(grammar: Grammar) -> bool:
    """Heuristic test that a grammar is (a superset of) ``G_CLIA``.

    Needed features: every Int parameter, arbitrary constants, addition and
    subtraction, ``ite`` over a Bool nonterminal that can compare Int
    nonterminals.  Grammars built by :func:`repro.sygus.grammar.clia_grammar`
    qualify; restricted user grammars generally do not.
    """
    int_nts = [n for n, s in grammar.nonterminals.items() if s is INT]
    bool_nts = [n for n, s in grammar.nonterminals.items() if s is BOOL]
    if not int_nts or not bool_nts:
        return False
    for nt in int_nts:
        rules = grammar.productions.get(nt, [])
        has_const = any(is_any_const_ref(r) for r in rules)
        has_params = all(
            any(r is p for r in rules)
            for p in grammar.params
            if p.sort is INT
        )
        has_add = any(r.kind is Kind.ADD for r in rules)
        has_sub = any(r.kind is Kind.SUB for r in rules)
        has_ite = any(r.kind is Kind.ITE for r in rules)
        if has_const and has_params and has_add and has_sub and (
            has_ite or grammar.start_sort is BOOL or nt != grammar.start
        ):
            comparison_ok = any(
                any(
                    r.kind in (Kind.GE, Kind.LE, Kind.LT, Kind.GT, Kind.EQ)
                    for r in grammar.productions.get(bnt, [])
                )
                for bnt in bool_nts
            )
            if comparison_ok:
                return True
    return False


class CliaTreeEncoder:
    """Decision-tree-normal-form encoder for ``G_CLIA`` candidates."""

    def __init__(self, synth_fun: SynthFun, height: int, prefix: str = "dt"):
        int_params = [p for p in synth_fun.params if p.sort is INT]
        if len(int_params) != len(synth_fun.params):
            raise EncodingUnsupported("Bool parameters are not supported")
        self.synth_fun = synth_fun
        self.shape = TreeShape(prefix, height, len(int_params), synth_fun.return_sort)

    def unknowns(self) -> List[Term]:
        return self.shape.coeff_vars()

    def static_constraints(self, coeff_bound: int, const_bound: int) -> Term:
        parts: List[Term] = []
        for node in range(self.shape.nodes):
            for j in range(self.shape.arity):
                c = int_var(
                    f"{self.shape.prefix}!c{node}_{j}"
                )
                parts.append(ge(c, -coeff_bound))
                parts.append(le(c, coeff_bound))
            d = int_var(f"{self.shape.prefix}!d{node}")
            parts.append(ge(d, -const_bound))
            parts.append(le(d, const_bound))
        return and_(*parts)

    #: The constant bound is always relevant for decision trees (d_i unknowns).
    has_const_unknowns = True

    def app_instance(self, arg_values: Sequence[int]) -> Tuple[Term, Term]:
        from repro.lang.builders import true

        return self.shape.interpret(arg_values), true()

    def decode(self, model: Dict[str, int], params: Sequence[Term]) -> Term:
        return self.shape.decode(model, params)

    def initial_candidate(self) -> Term:
        if self.synth_fun.return_sort is INT:
            return int_const(0)
        return ge(int_const(0), int_const(0))


class GeneralGrammarEncoder:
    """Selector-based encoder for arbitrary expression grammars.

    The candidate is a full k-ary derivation tree of height ``h`` (k = the
    maximum production arity).  Each (node, nonterminal) pair has an integer
    selector choosing one production; terminal productions are allowed at any
    node (so all heights <= h are covered and the minimal-height guarantee of
    height enumeration is preserved).  Arbitrary-constant placeholders become
    shared integer unknowns.
    """

    def __init__(self, synth_fun: SynthFun, height: int, prefix: str = "gg"):
        self.synth_fun = synth_fun
        self.grammar = synth_fun.grammar
        self.height = height
        self.prefix = prefix
        self._instances = 0
        self.arity = self._max_production_arity()
        self.num_nodes = self._count_nodes()
        self._validate()

    # -- Shape -------------------------------------------------------------------

    def _max_production_arity(self) -> int:
        arity = 1
        for rules in self.grammar.productions.values():
            for rhs in rules:
                arity = max(arity, _count_refs(rhs))
        return arity

    def _count_nodes(self) -> int:
        k = self.arity
        if k == 1:
            return self.height
        return (k**self.height - 1) // (k - 1)

    def _children(self, node: int) -> List[int]:
        return [self.arity * node + 1 + j for j in range(self.arity)]

    def _is_internal(self, node: int) -> bool:
        return self.arity * node + 1 < self.num_nodes

    def _validate(self) -> None:
        for nt, rules in self.grammar.productions.items():
            if not rules:
                raise EncodingUnsupported(f"nonterminal {nt} has no productions")
            for rhs in rules:
                _check_encodable(rhs)
        for nt in self.grammar.nonterminals:
            if not any(
                _count_refs(r) == 0 for r in self.grammar.productions.get(nt, [])
            ):
                raise EncodingUnsupported(
                    f"nonterminal {nt} has no terminal production"
                )

    # -- Unknowns -------------------------------------------------------------------

    def _selector(self, node: int, nt: str, prod: int) -> Term:
        """Boolean one-hot selector: node chooses production ``prod`` of ``nt``.

        Keeping selection in the boolean skeleton (rather than as integer
        equalities) lets the CDCL core drive the production search directly,
        which is dramatically faster in the lazy DPLL(T) loop.
        """
        return bool_var(f"{self.prefix}!s{node}_{nt}_{prod}")

    def _const_unknown(self, node: int, nt: str, prod: int, occ: int) -> Term:
        return int_var(f"{self.prefix}!k{node}_{nt}_{prod}_{occ}")

    def _value_var(self, node: int, nt: str, instance: int, sort: Sort) -> Term:
        name = f"{self.prefix}!v{node}_{nt}_{instance}"
        return int_var(name) if sort is INT else bool_var(name)

    def _allowed_productions(self, node: int, nt: str) -> List[int]:
        rules = self.grammar.productions[nt]
        return [
            idx
            for idx, rhs in enumerate(rules)
            if self._is_internal(node) or _count_refs(rhs) == 0
        ]

    def unknowns(self) -> List[Term]:
        result: List[Term] = []
        for node in range(self.num_nodes):
            for nt, rules in self.grammar.productions.items():
                for idx in range(len(rules)):
                    result.append(self._selector(node, nt, idx))
        return result

    @property
    def has_const_unknowns(self) -> bool:
        return any(
            _count_any_consts(rhs) > 0
            for rules in self.grammar.productions.values()
            for rhs in rules
        )

    def static_constraints(self, coeff_bound: int, const_bound: int) -> Term:
        parts: List[Term] = []
        for node in range(self.num_nodes):
            for nt, rules in self.grammar.productions.items():
                allowed = self._allowed_productions(node, nt)
                selectors = [self._selector(node, nt, idx) for idx in allowed]
                parts.append(or_(*selectors))
                for i in range(len(selectors)):
                    for j in range(i + 1, len(selectors)):
                        parts.append(or_(not_(selectors[i]), not_(selectors[j])))
                forbidden = [
                    idx for idx in range(len(rules)) if idx not in allowed
                ]
                for idx in forbidden:
                    parts.append(not_(self._selector(node, nt, idx)))
                for idx, rhs in enumerate(rules):
                    for occ in range(_count_any_consts(rhs)):
                        k = self._const_unknown(node, nt, idx, occ)
                        parts.append(ge(k, -const_bound))
                        parts.append(le(k, const_bound))
        return and_(*parts)

    # -- Symbolic interpretation ---------------------------------------------------

    def app_instance(self, arg_values: Sequence[int]) -> Tuple[Term, Term]:
        """Returns ``(value term, side constraints)`` for one invocation.

        The value term is the root node's value variable; the side
        constraints define every node value by guarded equations.
        """
        if len(arg_values) != len(self.synth_fun.params):
            raise ValueError("wrong number of argument values")
        instance = self._instances
        self._instances += 1
        env = {
            p: int_const(int(v))
            for p, v in zip(self.synth_fun.params, arg_values)
        }
        parts: List[Term] = []
        for node in range(self.num_nodes):
            for nt, rules in self.grammar.productions.items():
                sort = self.grammar.nonterminals[nt]
                value = self._value_var(node, nt, instance, sort)
                for idx, rhs in enumerate(rules):
                    if not self._is_internal(node) and _count_refs(rhs) > 0:
                        continue
                    interp = self._interpret_rhs(rhs, node, nt, idx, instance, env)
                    equal = (
                        eq(value, interp) if sort is INT else iff(value, interp)
                    )
                    parts.append(implies(self._selector(node, nt, idx), equal))
        root_sort = self.grammar.start_sort
        root_value = self._value_var(0, self.grammar.start, instance, root_sort)
        return root_value, and_(*parts)

    def _interpret_rhs(
        self,
        rhs: Term,
        node: int,
        nt: str,
        prod_index: int,
        instance: int,
        env: Dict[Term, Term],
    ) -> Term:
        children = self._children(node)
        state = {"ref": 0, "const": 0}

        def build(t: Term) -> Term:
            if is_nonterminal_ref(t):
                child = children[state["ref"]]
                state["ref"] += 1
                child_nt = ref_name(t)
                child_sort = self.grammar.nonterminals[child_nt]
                return self._value_var(child, child_nt, instance, child_sort)
            if is_any_const_ref(t):
                k = self._const_unknown(node, nt, prod_index, state["const"])
                state["const"] += 1
                return k
            if t in env:
                return env[t]
            if t.kind is Kind.APP:
                from repro.sygus.grammar import expand_interpreted

                func = self.grammar.interpreted.get(t.payload)  # type: ignore[arg-type]
                if func is None:
                    raise EncodingUnsupported(f"unknown function {t.payload!r}")
                actuals = [build(a) for a in t.args]
                return expand_interpreted(
                    func.instantiate(actuals), self.grammar.interpreted
                )
            if not t.args:
                return t
            return Term.make(t.kind, tuple(build(a) for a in t.args), t.payload, t.sort)

        return build(rhs)

    # -- Decoding ---------------------------------------------------------------------

    def decode(self, model: Dict[str, int], params: Sequence[Term]) -> Term:
        substitution = dict(zip(self.synth_fun.params, params))

        def build(node: int, nt: str) -> Term:
            rules = self.grammar.productions[nt]
            selector_value = 0
            for idx in range(len(rules)):
                if model.get(f"{self.prefix}!s{node}_{nt}_{idx}", False):
                    selector_value = idx
                    break
            rhs = rules[selector_value]
            children = self._children(node)
            state = {"ref": 0, "const": 0}

            def instantiate(t: Term) -> Term:
                if is_nonterminal_ref(t):
                    child = children[state["ref"]]
                    state["ref"] += 1
                    return build(child, ref_name(t))
                if is_any_const_ref(t):
                    name = (
                        f"{self.prefix}!k{node}_{nt}_{selector_value}_{state['const']}"
                    )
                    state["const"] += 1
                    return int_const(int(model.get(name, 0)))
                if t in substitution:
                    return substitution[t]
                if not t.args:
                    return t
                return Term.make(
                    t.kind, tuple(instantiate(a) for a in t.args), t.payload, t.sort
                )

            return instantiate(rhs)

        return simplify(build(0, self.grammar.start))

    def initial_candidate(self) -> Term:
        """Smallest derivable term: follow first terminal productions."""

        def terminal_of(nt: str) -> Term:
            for rhs in self.grammar.productions[nt]:
                if _count_refs(rhs) == 0:
                    if is_any_const_ref(rhs):
                        return int_const(0)
                    return rhs
            raise EncodingUnsupported(f"no terminal production for {nt}")

        body = terminal_of(self.grammar.start)
        return substitute(body, dict(zip(self.grammar.params, self.synth_fun.params)))


def _count_refs(rhs: Term) -> int:
    if is_nonterminal_ref(rhs):
        return 1
    if not rhs.args:
        return 0
    return sum(_count_refs(a) for a in rhs.args)


def _count_any_consts(rhs: Term) -> int:
    if is_any_const_ref(rhs):
        return 1
    if not rhs.args:
        return 0
    return sum(_count_any_consts(a) for a in rhs.args)


def _check_encodable(rhs: Term) -> None:
    if rhs.kind is Kind.MUL:
        left_refs = _count_refs(rhs.args[0])
        right_refs = _count_refs(rhs.args[1])
        if left_refs and right_refs:
            raise EncodingUnsupported("nonlinear production (product of nonterminals)")
    for arg in rhs.args:
        _check_encodable(arg)
