"""Fixed-height synthesis (Algorithm 2) and height enumeration (Section 5).

``fixed_height`` runs one CEGIS loop whose inductive queries are discharged
symbolically: the candidate space (all programs of syntax-tree height <= h)
is encoded as unknown integer coefficients/selectors and each query becomes
one QF_LIA SMT call.  ``HeightEnumerationSynthesizer`` wraps it in the
height-increasing outer loop, guaranteeing the smallest-height solution; this
standalone form is the "plain height-based enumeration" baseline of the
paper's ablation study (Figure 14).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs import forensics
from repro.lang.ast import Kind, Term
from repro.lang.builders import and_, bool_var, implies, int_const
from repro.lang.evaluator import EvaluationError, Value, evaluate
from repro.lang.traversal import rewrite_bottom_up
from repro.smt.solver import SmtSolver, SolverBudgetExceeded, Status
from repro.sygus.problem import Solution, SygusProblem
from repro.synth.cegis import CegisTimeout, Example, cegis
from repro.synth.config import SynthConfig
from repro.synth.examples import ExampleSet
from repro.synth.encoding import (
    CliaTreeEncoder,
    EncodingUnsupported,
    GeneralGrammarEncoder,
    grammar_is_full_clia,
)
from repro.synth.result import SynthesisOutcome, SynthesisStats


def make_encoder(problem: SygusProblem, height: int, prefix: str = "fh"):
    """Choose the most structured encoding the grammar admits.

    CLIA grammars get the decision-tree normal form (Figure 5); affine
    operator grammars like ``G_qm`` get the paper's adapted ``interpret_h``
    with operator nodes over affine leaves; everything else falls back to the
    generic production-selector encoding.
    """
    from repro.synth.affine_encoding import AffineSpineEncoder, affine_operator_view

    if grammar_is_full_clia(problem.synth_fun.grammar):
        return CliaTreeEncoder(problem.synth_fun, height, prefix)
    if (
        problem.synth_fun.return_sort.name == "Int"
        and affine_operator_view(problem.synth_fun.grammar) is not None
    ):
        return AffineSpineEncoder(problem.synth_fun, height, prefix)
    return GeneralGrammarEncoder(problem.synth_fun, height, prefix)


def inductive_query(
    problem: SygusProblem,
    encoder,
    examples: Sequence[Example],
) -> Term:
    """The symbolic constraint “candidate satisfies the spec on every example”.

    For each example the spec's variables are fixed to concrete values and
    every invocation of the synth-fun is replaced by the encoder's symbolic
    interpretation on the (now concrete) argument vector — the
    ``interpret_h`` substitution of Section 5.2.
    """
    fun_name = problem.fun_name
    parts: List[Term] = []
    for env in examples:
        side_constraints: List[Term] = []

        def rewrite(t: Term) -> Term:
            if t.kind is Kind.VAR and t.payload in env:
                value = env[t.payload]  # type: ignore[index]
                if t.sort.name == "Int":
                    return int_const(int(value))
                from repro.lang.builders import bool_const

                return bool_const(bool(value))
            if t.kind is Kind.APP and t.payload == fun_name:
                arg_values = []
                for arg in t.args:
                    try:
                        arg_values.append(int(evaluate(arg, {})))
                    except EvaluationError as exc:
                        raise EncodingUnsupported(
                            "nested synth-fun invocations are not supported by "
                            "the symbolic encoding"
                        ) from exc
                value, side = encoder.app_instance(arg_values)
                if side.kind is not Kind.CONST or not side.payload:
                    side_constraints.append(side)
                return value
            return t

        instantiated = rewrite_bottom_up(problem.spec, rewrite)
        parts.append(instantiated)
        parts.extend(side_constraints)
    return and_(*parts)


def _seeded_bounds(problem: SygusProblem, schedule) -> tuple:
    """Drop widening rounds that cannot cover the spec's own constants.

    If the specification mentions the constant 100, a candidate with
    constants bounded by 1 almost never verifies; starting the widening at
    the smallest bound >= the largest spec constant skips provably useless
    UNSAT rounds.
    """
    from repro.lang.ast import Kind
    from repro.lang.traversal import subexpressions

    largest = 1
    for sub_term in subexpressions(problem.spec):
        if sub_term.kind is Kind.CONST and isinstance(sub_term.payload, int):
            largest = max(largest, abs(sub_term.payload))
    kept = tuple(b for b in schedule if b >= largest)
    if kept:
        return kept
    return schedule[-1:]


class FixedHeightSession:
    """A resumable Algorithm-2 run at one (problem, height).

    The session owns the symbolic encoder and **one** incremental SMT solver;
    constant-bound widening is done by solving under an assumption literal
    that activates the current bound's range constraints, so clause learning,
    atom canonicalisation and theory lemmas are shared across every bound and
    every CEGIS iteration.  Each iteration only asserts the newest
    counterexample, and solver state also persists across *preempted time
    slices* (the cooperative loop parks a session when its slice expires and
    resumes it later).  When a query is unsat without the bound guard in the
    unsat assumption core, no wider bound can help and the widening loop
    stops early.
    """

    def __init__(
        self,
        problem: SygusProblem,
        height: int,
        config: SynthConfig,
        stats: Optional[SynthesisStats] = None,
        prefix: Optional[str] = None,
    ) -> None:
        self.problem = problem
        self.height = height
        self.config = config
        self.stats = stats if stats is not None else SynthesisStats()
        self.prefix = prefix or f"fh{height}"
        self.encoder = make_encoder(problem, height, self.prefix)
        if getattr(self.encoder, "has_const_unknowns", True):
            self.bounds = _seeded_bounds(problem, config.const_bounds)
        else:
            self.bounds = config.const_bounds[:1]
        self._solver: Optional[SmtSolver] = None
        self._bound_guards: Dict[int, Term] = {}
        self._asserted_examples = 0
        # Bounds below this index are permanently unsat: their guard appeared
        # in an unsat assumption core, and example sets only ever grow.
        self._first_viable = 0
        self._lemmas_seen = 0
        self._deleted_seen = 0
        self.candidate: Optional[Term] = self.encoder.initial_candidate()
        self._candidate_from_ind = False
        self.rounds = 0
        self.exhausted = False

    @property
    def solver(self) -> Optional[SmtSolver]:
        """The session's single incremental solver (None until first query)."""
        return self._solver

    def run(
        self, examples: List[Example], deadline: Optional[float] = None
    ) -> Optional[Term]:
        """Continue the CEGIS loop; returns a solution or None.

        ``None`` with :attr:`exhausted` unset means the deadline preempted
        the session (resume later); with :attr:`exhausted` set there is no
        solution at this height (within the coefficient bounds).

        Raises:
            CegisTimeout: when the deadline expires mid-step.
        """
        if self.exhausted:
            return None
        with obs.span(
            "cegis", problem=self.problem.name, height=self.height
        ) as session_span:
            result = self._run_loop(examples, deadline)
            session_span.set(rounds=self.rounds, exhausted=self.exhausted,
                             solved=result is not None)
            return result

    def _run_loop(
        self, examples: List[Example], deadline: Optional[float]
    ) -> Optional[Term]:
        problem, stats = self.problem, self.stats
        examples = ExampleSet.wrap(examples)
        while self.rounds < self.config.max_cegis_rounds:
            self._check_deadline(deadline)
            self.rounds += 1
            stats.cegis_iterations += 1
            forensics.emit(
                forensics.CEGIS_ITER,
                iteration=self.rounds,
                height=self.height,
                examples=len(examples),
            )
            # Compiled screening: after preemption or a height bump the
            # shared example pool may already refute this candidate — catch
            # that with compiled evaluation instead of an SMT validity check.
            counterexample = self._screen(examples)
            if counterexample is None:
                try:
                    with obs.span("verify", problem=problem.name,
                                  height=self.height):
                        ok, counterexample = problem.verify(
                            self.candidate, deadline
                        )
                except SolverBudgetExceeded as exc:
                    self.rounds -= 1
                    raise CegisTimeout(str(exc)) from exc
                if ok:
                    return self.candidate
            assert counterexample is not None
            if examples.add(counterexample):
                forensics.emit(
                    forensics.CEGIS_CEX,
                    iteration=self.rounds,
                    height=self.height,
                    cex=forensics.render_example(counterexample),
                )
            elif self._candidate_from_ind:
                # ind-synth claimed consistency yet verification refutes on a
                # known example: the candidate space is exhausted.
                self.exhausted = True
                return None
            candidate = self._ind_synth(examples, deadline)
            if candidate is None:
                self.exhausted = True
                return None
            self.candidate = candidate
            self._candidate_from_ind = True
        self.exhausted = True
        return None

    def _check_deadline(self, deadline: Optional[float]) -> None:
        if deadline is not None and time.monotonic() > deadline:
            raise CegisTimeout("fixed-height deadline exceeded")

    def _screen(self, examples: ExampleSet) -> Optional[Example]:
        """A known example refuting the current candidate, or None."""
        try:
            violation = self.problem.first_violation(self.candidate, examples)
        except EvaluationError:
            return None
        return dict(violation) if violation is not None else None

    def _bound_guard(self, solver: SmtSolver, const_bound: int) -> Term:
        """The assumption literal activating ``const_bound``'s constraints.

        The implication ``guard -> static_constraints(bound)`` is asserted
        permanently on first use; while the guard is not assumed, it is a
        free variable and the constraints are vacuous.
        """
        guard = self._bound_guards.get(const_bound)
        if guard is None:
            guard = bool_var(f"{self.prefix}!bound{const_bound}")
            solver.add(
                implies(
                    guard,
                    self.encoder.static_constraints(
                        self.config.coeff_bound, const_bound
                    ),
                )
            )
            self._bound_guards[const_bound] = guard
        return guard

    def _ind_synth(
        self, examples: List[Example], deadline: Optional[float]
    ) -> Optional[Term]:
        if not examples:
            return self.encoder.initial_candidate()
        with obs.span(
            "ind_synth",
            problem=self.problem.name,
            height=self.height,
            examples=len(examples),
        ):
            return self._ind_synth_query(examples, deadline)

    def _ind_synth_query(
        self, examples: List[Example], deadline: Optional[float]
    ) -> Optional[Term]:
        solver = self._solver
        if solver is None:
            solver = self._solver = SmtSolver(
                lia_node_budget=self.config.lia_node_budget
            )
        solver.deadline = deadline
        for example in examples[self._asserted_examples :]:
            solver.add(inductive_query(self.problem, self.encoder, [example]))
        self._asserted_examples = len(examples)
        stats = self.stats
        rounds_before = solver.stats.rounds
        try:
            for index in range(self._first_viable, len(self.bounds)):
                const_bound = self.bounds[index]
                self._check_deadline(deadline)
                guard = self._bound_guard(solver, const_bound)
                stats.smt_checks += 1
                with obs.span(
                    "widen",
                    problem=self.problem.name,
                    height=self.height,
                    const_bound=const_bound,
                ):
                    result = solver.solve(assumptions=[guard])
                if result.status is Status.SAT:
                    assert result.model is not None
                    return self.encoder.decode(
                        result.model, self.problem.synth_fun.params
                    )
                if guard not in result.unsat_core:
                    # The examples are inconsistent with the encoding no
                    # matter how wide the constant range: skip the rest of
                    # the widening schedule.
                    stats.assumption_core_skips += len(self.bounds) - index - 1
                    break
                # This bound is dead for the current examples, hence for
                # every future (superset) example set too.
                self._first_viable = index + 1
            return None
        except SolverBudgetExceeded as exc:
            raise CegisTimeout(str(exc)) from exc
        finally:
            stats.smt_rounds += solver.stats.rounds - rounds_before
            stats.theory_lemmas += solver.stats.lemmas - self._lemmas_seen
            self._lemmas_seen = solver.stats.lemmas
            deleted = solver.learnt_clauses_deleted
            stats.learnt_clauses_deleted += deleted - self._deleted_seen
            self._deleted_seen = deleted


def fixed_height(
    problem: SygusProblem,
    height: int,
    config: SynthConfig,
    examples: Optional[List[Example]] = None,
    deadline: Optional[float] = None,
    stats: Optional[SynthesisStats] = None,
    prefix: Optional[str] = None,
    session_store: Optional[Dict[int, FixedHeightSession]] = None,
) -> Optional[Term]:
    """Algorithm 2: CEGIS with symbolic fixed-height inductive synthesis.

    Returns a candidate body of height <= ``height`` satisfying the spec, or
    None if none exists (within the configured coefficient bounds).  Pass a
    ``session_store`` dict to make preempted runs resumable (the cooperative
    loop does this per subproblem node).

    Raises:
        CegisTimeout: when the deadline expires.
        EncodingUnsupported: when the grammar cannot be encoded.
    """
    if examples is None:
        examples = []
    session: Optional[FixedHeightSession] = None
    if session_store is not None:
        session = session_store.get(height)
    if session is None:
        session = FixedHeightSession(problem, height, config, stats, prefix)
        if session_store is not None:
            session_store[height] = session
    elif stats is not None:
        session.stats = stats
    return session.run(examples, deadline)


class HeightEnumerationSynthesizer:
    """Plain height-based enumeration: try h = 1, 2, ... (Section 5.1).

    Counterexamples are shared across heights, mirroring the paper's
    parallelised implementation which shares the counterexample set between
    per-height CEGIS loops.
    """

    name = "height-enum"

    def __init__(self, config: Optional[SynthConfig] = None):
        self.config = config or SynthConfig()

    def synthesize(self, problem: SygusProblem) -> SynthesisOutcome:
        with obs.span("synth", problem=problem.name, solver=self.name):
            outcome = self._synthesize_impl(problem)
        if obs.enabled():
            obs.publish_stats(outcome.stats)
        return outcome

    def _synthesize_impl(self, problem: SygusProblem) -> SynthesisOutcome:
        config = self.config
        stats = SynthesisStats()
        deadline = (
            time.monotonic() + config.timeout if config.timeout is not None else None
        )
        start = time.monotonic()
        examples: List[Example] = []
        for height in range(1, config.max_height + 1):
            stats.heights_tried += 1
            stats.max_height_reached = height
            try:
                body = fixed_height(
                    problem,
                    height,
                    config,
                    examples=examples,
                    deadline=deadline,
                    stats=stats,
                )
            except (CegisTimeout, SolverBudgetExceeded):
                # A budget exception is only a *global* timeout when the wall
                # clock actually expired; a per-query budget (e.g. the LIA
                # node budget) exhausted at one height must not abandon the
                # whole enumeration — the next height may still be easy.
                if deadline is not None and time.monotonic() > deadline:
                    return SynthesisOutcome(None, stats, timed_out=True)
                continue
            except EncodingUnsupported:
                return SynthesisOutcome(None, stats)
            if body is not None:
                elapsed = time.monotonic() - start
                solution = Solution(problem, body, self.name, elapsed)
                return SynthesisOutcome(solution, stats)
        return SynthesisOutcome(None, stats)
