"""Sequential solver portfolios and the virtual best solver.

SyGuS-Comp reports (which the paper's evaluation follows) often quote the
*virtual best solver* — the per-benchmark best of all entrants — as the
ceiling a portfolio could reach.  This module provides both:

- :class:`SequentialPortfolio`: run several solvers on one problem under a
  shared budget, first solution wins (a practical meta-solver: deduction-
  heavy DryadSynth first, enumeration-heavy baselines as fallback);
- :class:`ProcessPortfolio`: the same members raced concurrently on OS
  processes via :mod:`repro.service` — each member gets the *full* budget
  instead of a slice, the first solver to finish wins and the losers are
  terminated;
- :func:`virtual_best`: the VBS over a campaign's :class:`RunResult` list.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sygus.problem import SygusProblem
from repro.synth.config import SynthConfig
from repro.synth.result import SynthesisOutcome, SynthesisStats


class SequentialPortfolio:
    """Run solver factories in order, splitting the wall-clock budget.

    ``members`` maps a display name to a factory ``(config) -> solver``;
    each member receives ``weight / total_weight`` of the remaining budget
    (the last member gets whatever is left).
    """

    name = "portfolio"

    def __init__(
        self,
        members: Sequence[Tuple[str, object, float]],
        config: Optional[SynthConfig] = None,
    ) -> None:
        if not members:
            raise ValueError("a portfolio needs at least one member")
        self.members = list(members)
        self.config = config or SynthConfig()

    @staticmethod
    def default(config: Optional[SynthConfig] = None) -> "SequentialPortfolio":
        """The natural CLIA portfolio: cooperative first, baselines after."""
        from repro.baselines import CegqiSolver, EnumerativeSolver, LoopInvGenSolver
        from repro.synth.cooperative import CooperativeSynthesizer

        return SequentialPortfolio(
            [
                ("dryadsynth", CooperativeSynthesizer, 0.6),
                ("cegqi", CegqiSolver, 0.15),
                ("eusolver", EnumerativeSolver, 0.15),
                ("loopinvgen", LoopInvGenSolver, 0.1),
            ],
            config,
        )

    def synthesize(self, problem: SygusProblem) -> SynthesisOutcome:
        total_weight = sum(weight for _, _, weight in self.members)
        stats = SynthesisStats()
        start = time.monotonic()
        budget = self.config.timeout
        timed_out = False
        for index, (name, factory, weight) in enumerate(self.members):
            if budget is not None:
                elapsed = time.monotonic() - start
                remaining = budget - elapsed
                if remaining <= 0:
                    timed_out = True
                    break
                if index == len(self.members) - 1:
                    share = remaining
                else:
                    share = max(remaining * weight / total_weight, 0.2)
                    share = min(share, remaining)
            else:
                share = None
            member_config = SynthConfig(
                timeout=share,
                max_height=self.config.max_height,
                coeff_bound=self.config.coeff_bound,
                const_bounds=self.config.const_bounds,
                minimize_solutions=self.config.minimize_solutions,
            )
            solver = factory(member_config)
            outcome = solver.synthesize(problem)
            stats.merge(outcome.stats)
            if outcome.solution is not None:
                elapsed = time.monotonic() - start
                solution = outcome.solution
                solution = type(solution)(
                    problem=solution.problem,
                    body=solution.body,
                    engine=f"{self.name}:{name}",
                    time_seconds=elapsed,
                )
                return SynthesisOutcome(solution, stats)
            timed_out = timed_out or outcome.timed_out
        return SynthesisOutcome(None, stats, timed_out=timed_out)


class ProcessPortfolio:
    """Race solver registry names concurrently in worker processes.

    Unlike :class:`SequentialPortfolio` (whose members are in-process
    factories), members are named so jobs can cross the process boundary;
    any name accepted by :func:`repro.service.jobs.build_solver` works.
    Solutions come back as serialized SyGuS text and are re-parsed into
    terms here.
    """

    name = "portfolio-mp"

    DEFAULT_MEMBERS = ("dryadsynth", "cegqi", "eusolver", "loopinvgen")

    def __init__(
        self,
        members: Sequence[str] = DEFAULT_MEMBERS,
        config: Optional[SynthConfig] = None,
        workers: Optional[int] = None,
    ) -> None:
        if not members:
            raise ValueError("a portfolio needs at least one member")
        self.members = tuple(members)
        self.config = config or SynthConfig()
        self.workers = workers or len(self.members)

    def synthesize(self, problem: SygusProblem) -> SynthesisOutcome:
        from repro.service.jobs import (
            TIMEOUT,
            SynthesisJob,
            parse_solution_text,
        )
        from repro.service.pool import WorkerPool
        from repro.sygus.problem import Solution

        start = time.monotonic()
        jobs = [
            SynthesisJob.from_problem(
                problem,
                solver=member,
                config=self.config,
                name=f"{problem.name}:{member}",
            )
            for member in self.members
        ]
        with WorkerPool(workers=self.workers) as pool:
            winner, results = pool.race(jobs)
        stats = SynthesisStats()
        for result in results:
            if result.stats:
                stats.merge(SynthesisStats.from_json(result.stats))
        if winner is not None and winner.solution_text:
            body = parse_solution_text(problem, winner.solution_text)
            elapsed = time.monotonic() - start
            solution = Solution(
                problem, body, f"{self.name}:{winner.solver}", elapsed
            )
            return SynthesisOutcome(solution, stats)
        timed_out = any(r.status == TIMEOUT for r in results)
        return SynthesisOutcome(None, stats, timed_out=timed_out)


def virtual_best(results) -> Dict[str, Optional[object]]:
    """Per-benchmark best run (fastest solve) over a campaign.

    Returns ``{benchmark: RunResult or None}``; the VBS "solver" solves a
    benchmark iff anyone does, at the minimum observed time.
    """
    best: Dict[str, Optional[object]] = {}
    for result in results:
        current = best.get(result.benchmark)
        if not result.solved:
            best.setdefault(result.benchmark, None)
            continue
        if current is None or result.time_seconds < current.time_seconds:
            best[result.benchmark] = result
    return best


def vbs_summary(results) -> Dict[str, object]:
    """Aggregate VBS statistics: solved count, total time, contributions."""
    best = virtual_best(results)
    solved = [r for r in best.values() if r is not None]
    contributions: Dict[str, int] = {}
    for run in solved:
        contributions[run.solver] = contributions.get(run.solver, 0) + 1
    return {
        "solved": len(solved),
        "total": len(best),
        "total_time": round(sum(r.time_seconds for r in solved), 4),
        "contributions": dict(sorted(contributions.items())),
    }
