"""Decision-tree normal form for CLIA functions (Figure 5 of the paper).

A height-``h`` decision tree is a full binary tree with ``2^h - 1`` nodes.
Node ``i``'s children are ``2i+1`` and ``2i+2``.  Every node carries an
integer coefficient vector ``c_i`` (one entry per function parameter) and a
constant ``d_i``.  Internal nodes test ``c_i . x + d_i >= 0``; leaves return
``c_i . x + d_i`` (for Int-valued functions) or the atom ``c_i . x + d_i >= 0``
itself (for Bool-valued functions, as used by the INV track).

The module provides both directions: interpreting unknown-coefficient trees
symbolically on concrete inputs (the ``interpret_h`` function of Section 5.2)
and converting a solved coefficient assignment back into a CLIA term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.lang.ast import Kind, Term
from repro.lang.builders import add, ge, int_const, int_var, ite, mul
from repro.lang.simplify import simplify
from repro.lang.sorts import BOOL, INT, Sort


def num_nodes(height: int) -> int:
    """Number of nodes of a full binary tree of the given height."""
    if height < 1:
        raise ValueError("height must be at least 1")
    return (1 << height) - 1


def num_internal(height: int) -> int:
    """Number of internal (decision) nodes."""
    return (1 << (height - 1)) - 1


def coeff_name(prefix: str, node: int, param_index: int) -> str:
    """Name of the unknown coefficient ``c_{node}[param_index]``."""
    return f"{prefix}!c{node}_{param_index}"


def const_name(prefix: str, node: int) -> str:
    """Name of the unknown constant ``d_{node}``."""
    return f"{prefix}!d{node}"


@dataclass(frozen=True)
class TreeShape:
    """Static shape of a decision tree: height, arity, and unknown names."""

    prefix: str
    height: int
    arity: int
    return_sort: Sort

    @property
    def nodes(self) -> int:
        return num_nodes(self.height)

    @property
    def internal(self) -> int:
        return num_internal(self.height)

    def coeff_vars(self) -> List[Term]:
        """All unknown coefficient/constant variables, in a fixed order."""
        unknowns: List[Term] = []
        for node in range(self.nodes):
            for j in range(self.arity):
                unknowns.append(int_var(coeff_name(self.prefix, node, j)))
            unknowns.append(int_var(const_name(self.prefix, node)))
        return unknowns

    # -- Symbolic interpretation (interpret_h) --------------------------------

    def node_affine(self, node: int, arg_values: Sequence[int]) -> Term:
        """``c_node . args + d_node`` with concrete args: linear in unknowns."""
        parts: List[Term] = []
        for j, value in enumerate(arg_values):
            if value == 0:
                continue
            coeff = int_var(coeff_name(self.prefix, node, j))
            parts.append(coeff if value == 1 else mul(int(value), coeff))
        parts.append(int_var(const_name(self.prefix, node)))
        return add(*parts) if len(parts) > 1 else parts[0]

    def interpret(self, arg_values: Sequence[int]) -> Term:
        """The symbolic value of the tree on concrete ``arg_values``.

        Int-sorted result for Int functions; a Bool formula for predicates.
        """
        if len(arg_values) != self.arity:
            raise ValueError("wrong number of argument values")

        def node_term(node: int) -> Term:
            affine = self.node_affine(node, arg_values)
            if node >= self.internal:
                return affine if self.return_sort is INT else ge(affine, 0)
            condition = ge(affine, 0)
            return ite(condition, node_term(2 * node + 1), node_term(2 * node + 2))

        return node_term(0)

    # -- Decoding ----------------------------------------------------------------

    def decode(self, model: Mapping[str, int], params: Sequence[Term]) -> Term:
        """Rebuild the synthesized function body from an SMT model."""
        if len(params) != self.arity:
            raise ValueError("wrong number of parameters")

        def affine_term(node: int) -> Term:
            parts: List[Term] = []
            for j, param in enumerate(params):
                coeff = model.get(coeff_name(self.prefix, node, j), 0)
                if coeff == 0:
                    continue
                parts.append(param if coeff == 1 else mul(int(coeff), param))
            constant = model.get(const_name(self.prefix, node), 0)
            if constant != 0 or not parts:
                parts.append(int_const(int(constant)))
            return add(*parts) if len(parts) > 1 else parts[0]

        def node_term(node: int) -> Term:
            affine = affine_term(node)
            if node >= self.internal:
                return affine if self.return_sort is INT else ge(affine, 0)
            condition = ge(affine, 0)
            return ite(condition, node_term(2 * node + 1), node_term(2 * node + 2))

        return simplify(node_term(0))
