"""The deductive component (Section 6, Algorithm 3, Figures 7 and 8).

``deduct`` repeatedly and exhaustively applies meaning-preserving rewrite
rules to the specification.  If the simplified specification pins the
synth-fun down to a reference implementation that fits the grammar (possibly
after ``Match`` rewriting against the grammar's interpreted functions), the
problem is solved outright; otherwise the caller receives the simplified
specification for the enumerative engine to chew on.

Rule inventory implemented here:

- Figure 7 (arbitrary grammar): ``IntEq``, ``IntNeq``, ``BoolPos``,
  ``BoolNeg``, ``RemoveVar``, ``RemoveArg``, ``Match``.
- Figure 8 (``G_CLIA``): ``GeMax``, ``LeMin``, ``GeMin``, ``LeMax``, ``Eq``,
  ``NotEq``, ``CNF``.
- Loop summarisation for invariant problems lives in
  :mod:`repro.synth.loop_summary` and is invoked from here.

Together (as the paper notes) these supersede the single-invocation class
solved by CVC4's CEGQI for conjunctive/disjunctive comparison specs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.ast import Kind, Term
from repro.lang.builders import (
    add,
    and_,
    eq,
    ge,
    gt,
    int_const,
    ite,
    le,
    lt,
    not_,
    or_,
    sub,
)
from repro.lang.simplify import simplify
from repro.lang.sorts import BOOL, INT
from repro.obs import forensics
from repro.lang.traversal import (
    app_occurrences,
    contains_app,
    free_vars,
    rewrite_bottom_up,
    substitute,
)
from repro.sygus.problem import SygusProblem
from repro.synth.result import SynthesisStats

#: Upper bound on the clause count produced by CNF distribution.
_MAX_CNF_CLAUSES = 128


def _rule_event(rule: str, outcome: str, **attrs) -> None:
    """One ``deduct.rule`` forensics record (Figure 7/8 rule application)."""
    forensics.emit(forensics.DEDUCT_RULE, rule=rule, outcome=outcome, **attrs)


@dataclass
class DeductionResult:
    """Outcome of a ``deduct`` call."""

    solution: Optional[Term] = None
    simplified_spec: Optional[Term] = None
    unsolvable: bool = False


# ---------------------------------------------------------------------------
# Literals: clause representation with f-comparisons made explicit
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FBound:
    """A literal ``f(args) >= bound`` (``is_ge``) or ``f(args) <= bound``."""

    invocation: Term
    is_ge: bool
    bound: Term


Literal = object  # FBound or a plain Term (an f-free or opaque literal)
Clause = Tuple[Literal, ...]


def _to_nnf(term: Term, polarity: bool) -> Term:
    """Negation normal form, eliminating IMPLIES/ITE/boolean EQ."""
    kind = term.kind
    if kind is Kind.NOT:
        return _to_nnf(term.args[0], not polarity)
    if kind is Kind.AND:
        parts = [_to_nnf(a, polarity) for a in term.args]
        return and_(*parts) if polarity else or_(*parts)
    if kind is Kind.OR:
        parts = [_to_nnf(a, polarity) for a in term.args]
        return or_(*parts) if polarity else and_(*parts)
    if kind is Kind.IMPLIES:
        ante, cons = term.args
        if polarity:
            return or_(_to_nnf(ante, False), _to_nnf(cons, True))
        return and_(_to_nnf(ante, True), _to_nnf(cons, False))
    if kind is Kind.ITE and term.sort is BOOL:
        cond, then, els = term.args
        then_part = or_(_to_nnf(cond, False), _to_nnf(then, polarity))
        else_part = or_(_to_nnf(cond, True), _to_nnf(els, polarity))
        return and_(then_part, else_part)
    if kind is Kind.EQ and term.args[0].sort is BOOL:
        a, b = term.args
        if polarity:
            return and_(
                or_(_to_nnf(a, False), _to_nnf(b, True)),
                or_(_to_nnf(a, True), _to_nnf(b, False)),
            )
        return and_(
            or_(_to_nnf(a, False), _to_nnf(b, False)),
            or_(_to_nnf(a, True), _to_nnf(b, True)),
        )
    # Atom (comparison, variable, constant, application).
    if polarity:
        return term
    return _negate_atom(term)


def _negate_atom(term: Term) -> Term:
    kind = term.kind
    if kind is Kind.GE:
        return lt(term.args[0], term.args[1])
    if kind is Kind.GT:
        return le(term.args[0], term.args[1])
    if kind is Kind.LE:
        return gt(term.args[0], term.args[1])
    if kind is Kind.LT:
        return ge(term.args[0], term.args[1])
    if kind is Kind.EQ and term.args[0].sort is INT:
        return or_(
            gt(term.args[0], term.args[1]), lt(term.args[0], term.args[1])
        )
    if kind is Kind.CONST:
        from repro.lang.builders import bool_const

        return bool_const(not term.payload)
    return not_(term)


def _split_f_equalities(term: Term, fun_name: str) -> Term:
    """In NNF, split equalities/comparisons touching f into GE/LE pairs."""

    def rw(t: Term) -> Term:
        if t.kind is Kind.EQ and t.args[0].sort is INT and (
            contains_app(t, fun_name)
        ):
            return and_(ge(t.args[0], t.args[1]), le(t.args[0], t.args[1]))
        return t

    return rewrite_bottom_up(term, rw)


def _to_cnf(term: Term) -> Optional[List[Term]]:
    """Distribute to CNF; None when the clause budget would be exceeded."""
    kind = term.kind
    if kind is Kind.AND:
        clauses: List[Term] = []
        for arg in term.args:
            sub = _to_cnf(arg)
            if sub is None:
                return None
            clauses.extend(sub)
            if len(clauses) > _MAX_CNF_CLAUSES:
                return None
        return clauses
    if kind is Kind.OR:
        factor_lists: List[List[Term]] = []
        for arg in term.args:
            sub = _to_cnf(arg)
            if sub is None:
                return None
            factor_lists.append(sub)
        total = 1
        for factor in factor_lists:
            total *= len(factor)
            if total > _MAX_CNF_CLAUSES:
                return None
        clauses = []
        for combo in itertools.product(*factor_lists):
            clauses.append(or_(*combo))
        return clauses
    return [term]


def _clause_literals(clause: Term) -> List[Term]:
    if clause.kind is Kind.OR:
        return list(clause.args)
    return [clause]


def _classify_literal(literal: Term, fun_name: str) -> Literal:
    """Recognise ``f(args) >= e`` / ``<= e`` shapes (modulo strictness)."""
    kind = literal.kind
    if kind in (Kind.GE, Kind.GT, Kind.LE, Kind.LT):
        left, right = literal.args
        left_is_f = left.kind is Kind.APP and left.payload == fun_name
        right_is_f = right.kind is Kind.APP and right.payload == fun_name
        if left_is_f and not contains_app(right, fun_name):
            if kind is Kind.GE:
                return FBound(left, True, right)
            if kind is Kind.GT:
                return FBound(left, True, simplify(add(right, 1)))
            if kind is Kind.LE:
                return FBound(left, False, right)
            return FBound(left, False, simplify(add(right, -1)))
        if right_is_f and not contains_app(left, fun_name):
            if kind is Kind.GE:  # e >= f  <=>  f <= e
                return FBound(right, False, left)
            if kind is Kind.GT:
                return FBound(right, False, simplify(add(left, -1)))
            if kind is Kind.LE:
                return FBound(right, True, left)
            return FBound(right, True, simplify(add(left, 1)))
    return literal


def _literal_term(literal: Literal) -> Term:
    if isinstance(literal, FBound):
        op = ge if literal.is_ge else le
        return op(literal.invocation, literal.bound)
    return literal  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Figure 8: merging rules
# ---------------------------------------------------------------------------


def _merge_within_clause(
    literals: List[Literal], counts: Optional[Dict[str, int]] = None
) -> List[Literal]:
    """GeMin / LeMax / NotEq: merge disjoined comparisons per invocation.

    ``counts`` (when given) tallies merges per rule name for forensics.
    """

    def tally(rule: str) -> None:
        if counts is not None:
            counts[rule] = counts.get(rule, 0) + 1

    merged: List[Literal] = []
    ge_bounds: Dict[Term, Term] = {}
    le_bounds: Dict[Term, Term] = {}
    for literal in literals:
        if isinstance(literal, FBound):
            store = ge_bounds if literal.is_ge else le_bounds
            inv = literal.invocation
            if inv in store:
                e1, e2 = store[inv], literal.bound
                if literal.is_ge:
                    # f >= e1 or f >= e2  =>  f >= min(e1, e2)   (GeMin)
                    store[inv] = simplify(ite(ge(e1, e2), e2, e1))
                    tally("ge-min")
                else:
                    # f <= e1 or f <= e2  =>  f <= max(e1, e2)   (LeMax)
                    store[inv] = simplify(ite(ge(e1, e2), e1, e2))
                    tally("le-max")
            else:
                store[inv] = literal.bound
        else:
            merged.append(literal)
    for inv in list(ge_bounds):
        if inv in le_bounds:
            # NotEq: f >= e1 or f <= e2 with e1 = e2 + 2  =>  f != e1 - 1.
            if _constant_gap(ge_bounds[inv], le_bounds[inv]) == 2:
                merged.append(
                    not_(eq(inv, simplify(sub(ge_bounds[inv], int_const(1)))))
                )
                del ge_bounds[inv]
                del le_bounds[inv]
                tally("not-eq")
    for inv, bound in ge_bounds.items():
        merged.append(FBound(inv, True, bound))
    for inv, bound in le_bounds.items():
        merged.append(FBound(inv, False, bound))
    return merged


def _constant_gap(left: Term, right: Term) -> object:
    """``left - right`` when it is a constant, else None (linear reasoning)."""
    from repro.smt.linear import LinearityError, term_to_linexpr

    try:
        diff = term_to_linexpr(left) - term_to_linexpr(right)
    except LinearityError:
        return None
    return diff.const if diff.is_constant else None


def _merge_units(
    clauses: List[List[Literal]], counts: Optional[Dict[str, int]] = None
) -> List[List[Literal]]:
    """GeMax / LeMin: merge conjoined unit comparisons of one invocation."""

    def tally(rule: str) -> None:
        if counts is not None:
            counts[rule] = counts.get(rule, 0) + 1

    ge_units: Dict[Term, Term] = {}
    le_units: Dict[Term, Term] = {}
    rest: List[List[Literal]] = []
    for clause in clauses:
        if len(clause) == 1 and isinstance(clause[0], FBound):
            literal = clause[0]
            store = ge_units if literal.is_ge else le_units
            inv = literal.invocation
            if inv in store:
                e1, e2 = store[inv], literal.bound
                if literal.is_ge:
                    # f >= e1 and f >= e2  =>  f >= max(e1, e2)   (GeMax)
                    store[inv] = simplify(ite(ge(e1, e2), e1, e2))
                    tally("ge-max")
                else:
                    # f <= e1 and f <= e2  =>  f <= min(e1, e2)   (LeMin)
                    store[inv] = simplify(ite(ge(e1, e2), e2, e1))
                    tally("le-min")
            else:
                store[inv] = literal.bound
        else:
            rest.append(clause)
    for inv, bound in ge_units.items():
        rest.append([FBound(inv, True, bound)])
    for inv, bound in le_units.items():
        rest.append([FBound(inv, False, bound)])
    return rest


def _factor_common_disjuncts(clauses: List[List[Literal]]) -> List[List[Literal]]:
    """The CNF rule read right-to-left: drop duplicate/subsumed clauses."""
    unique: List[List[Literal]] = []
    seen_keys: List[frozenset] = []
    for clause in clauses:
        key = frozenset(
            _literal_term(lit) for lit in clause
        )
        subsumed = any(other <= key for other in seen_keys)
        if subsumed:
            continue
        # Remove previously kept clauses that this one subsumes.
        keep = [i for i, other in enumerate(seen_keys) if not key <= other]
        unique = [unique[i] for i in keep]
        seen_keys = [seen_keys[i] for i in keep]
        unique.append(clause)
        seen_keys.append(key)
    return unique


# ---------------------------------------------------------------------------
# The deduct procedure
# ---------------------------------------------------------------------------


class Deducer:
    """Implements Algorithm 3 for a given problem."""

    def __init__(self, problem: SygusProblem, stats: Optional[SynthesisStats] = None):
        self.problem = problem
        self.stats = stats or SynthesisStats()

    # -- SMT helpers --------------------------------------------------------------

    def _valid(self, formula: Term) -> bool:
        from repro.smt import is_valid

        self.stats.smt_checks += 1
        try:
            holds, _ = is_valid(formula)
        except Exception:
            return False
        return holds

    def _equal_terms(self, left: Term, right: Term) -> bool:
        if left is right:
            return True
        return self._valid(eq(left, right))

    # -- Entry point ------------------------------------------------------------------

    def deduct(self) -> DeductionResult:
        """Apply the rule set; see module docstring."""
        problem = self.problem
        fun_name = problem.fun_name
        spec = simplify(problem.spec)
        self.stats.deduction_steps += 1
        if not contains_app(spec, fun_name):
            # f is unconstrained: any grammar member works iff spec is valid.
            if self._valid(spec):
                _rule_event("unconstrained", "fired")
                return DeductionResult(solution=self._any_member())
            _rule_event("unconstrained", "failed")
            return DeductionResult(unsolvable=True)
        if problem.invariant is not None:
            from repro.synth.loop_summary import try_loop_summary

            summary_solution = try_loop_summary(problem, self)
            if summary_solution is not None:
                _rule_event("loop-summary", "fired")
                return DeductionResult(solution=summary_solution)
            _rule_event("loop-summary", "failed")
        removed = self._try_remove_arg(spec)
        if removed is not None:
            return removed
        spec = self._apply_remove_var(spec)
        if problem.synth_fun.return_sort is INT:
            return self._deduct_int(spec)
        return self._deduct_bool(spec)

    # -- RemoveArg (Figure 7) ----------------------------------------------------------

    def _try_remove_arg(self, spec: Term) -> Optional[DeductionResult]:
        """If f's i-th argument is the same constant at every call site,
        synthesize the (n-1)-ary function instead; the solution simply
        ignores the dropped parameter."""
        from repro.sygus.problem import SynthFun, SygusProblem

        problem = self.problem
        invocations = app_occurrences(spec, problem.fun_name)
        params = problem.synth_fun.params
        if len(params) < 2 or not invocations:
            return None
        drop_index = None
        for index in range(len(params)):
            values = {inv.args[index] for inv in invocations if len(inv.args) == len(params)}
            if len(values) == 1 and next(iter(values)).kind is Kind.CONST:
                drop_index = index
                break
        if drop_index is None:
            return None
        _rule_event("remove-arg", "attempt")
        reduced_params = params[:drop_index] + params[drop_index + 1 :]
        reduced_name = problem.fun_name + "!droparg"
        reduced_fun = SynthFun(
            reduced_name,
            reduced_params,
            problem.synth_fun.return_sort,
            problem.synth_fun.grammar,
        )
        mapping = {}
        for invocation in invocations:
            reduced_args = (
                invocation.args[:drop_index] + invocation.args[drop_index + 1 :]
            )
            mapping[invocation] = reduced_fun.apply(reduced_args)
        reduced_spec = substitute(spec, mapping)
        reduced_problem = SygusProblem(
            reduced_fun,
            reduced_spec,
            problem.variables,
            track=problem.track,
            name=problem.name + "!droparg",
        )
        result = Deducer(reduced_problem, self.stats).deduct()
        if result.solution is None:
            _rule_event("remove-arg", "failed")
            return None
        # The reduced body mentions only the surviving parameters, so it is
        # directly a body for f (which ignores the constant argument).
        body = result.solution
        if not self.problem.synth_fun.grammar.generates(body):
            _rule_event("remove-arg", "failed")
            return None
        ok, _ = self.problem.verify(body)
        if not ok:
            _rule_event("remove-arg", "failed")
            return None
        self.stats.deduction_solved = True
        _rule_event("remove-arg", "fired")
        return DeductionResult(solution=body)

    # -- RemoveVar (Figure 7) ----------------------------------------------------------

    def _apply_remove_var(self, spec: Term) -> Term:
        """Pin spec variables the specification is semantically insensitive
        to at 0 (checked by an SMT equivalence query per variable)."""
        if spec.size > 160:
            return spec  # the equivalence checks would dominate
        from repro.lang.builders import bool_var, iff, int_const, int_var
        from repro.lang.builders import var as make_var

        current = spec
        pinned = 0
        candidates = sorted(free_vars(spec), key=lambda v: v.payload)
        for variable in candidates:
            if variable not in free_vars(current):
                continue
            if variable.sort is not INT:
                continue
            invocations = app_occurrences(current, self.problem.fun_name)
            if any(variable in free_vars(inv) for inv in invocations):
                # The variable feeds f; its value can matter through f.
                continue
            # Abstract each invocation by a fresh variable: sound, and makes
            # the insensitivity check a pure QF_LIA query.
            abstraction = {
                inv: (
                    int_var(f"!F{i}")
                    if inv.sort is INT
                    else bool_var(f"!F{i}")
                )
                for i, inv in enumerate(invocations)
            }
            abstracted = substitute(current, abstraction)
            fresh = make_var(variable.payload + "!rv", variable.sort)
            renamed = substitute(abstracted, {variable: fresh})
            if self._valid(iff(abstracted, renamed)):
                current = simplify(substitute(current, {variable: int_const(0)}))
                pinned += 1
        if pinned:
            _rule_event(
                "remove-var", "fired", count=pinned,
                delta=current.size - spec.size,
            )
        return current

    def _any_member(self) -> Optional[Term]:
        from repro.sygus.grammar import minimal_member

        return minimal_member(self.problem.synth_fun.grammar)

    # -- Int-valued functions ------------------------------------------------------------

    def _deduct_int(self, spec: Term) -> DeductionResult:
        fun_name = self.problem.fun_name
        nnf = _to_nnf(spec, True)
        nnf = _split_f_equalities(nnf, fun_name)
        cnf = _to_cnf(simplify(nnf))
        if cnf is None:
            _rule_event("cnf", "failed", reason="clause-budget")
            return DeductionResult(simplified_spec=None)
        counts: Optional[Dict[str, int]] = {} if forensics.enabled() else None
        clauses = [
            _merge_within_clause(
                [_classify_literal(lit, fun_name) for lit in _clause_literals(c)],
                counts,
            )
            for c in cnf
        ]
        clauses = _merge_units(clauses, counts)
        before_factor = len(clauses)
        clauses = _factor_common_disjuncts(clauses)
        self.stats.deduction_steps += 1
        if counts is not None:
            if before_factor > len(clauses):
                counts["cnf"] = before_factor - len(clauses)
            for rule in sorted(counts):
                _rule_event(rule, "fired", count=counts[rule])

        solution = self._try_eq_rule(clauses)
        if solution is not None:
            return solution

        simplified = self._rebuild_spec(clauses)
        if simplified.size < spec.size:
            _rule_event(
                "int-rewrite", "fired", delta=simplified.size - spec.size
            )
            return DeductionResult(simplified_spec=simplified)
        return DeductionResult()

    def _try_eq_rule(self, clauses: List[List[Literal]]) -> Optional[DeductionResult]:
        """Eq + IntEq + Match: find forced ``f(y) = e`` and discharge the rest."""
        params = self.problem.synth_fun.params
        param_invocation_args = tuple(params)
        ge_units: Dict[Term, Term] = {}
        le_units: Dict[Term, Term] = {}
        other_clauses: List[List[Literal]] = []
        for clause in clauses:
            if len(clause) == 1 and isinstance(clause[0], FBound):
                literal = clause[0]
                store = ge_units if literal.is_ge else le_units
                store[literal.invocation] = literal.bound
            else:
                other_clauses.append(clause)
        for invocation in ge_units:
            if invocation not in le_units:
                continue
            lower, upper = ge_units[invocation], le_units[invocation]
            # Eq rule: f(e) >= e1 and f(e) <= e2 with T |= e1 = e2.
            if not self._equal_terms(lower, upper):
                continue
            _rule_event("eq", "attempt")
            body = self._body_from_invocation(invocation, lower)
            if body is None:
                _rule_event("eq", "failed", reason="invocation-shape")
                continue
            # IntEq: substitute the forced implementation into the residue.
            residue_terms = [
                or_(*(_literal_term(lit) for lit in clause))
                for clause in other_clauses
            ]
            residue = and_(*residue_terms) if residue_terms else None
            if residue is not None:
                inlined = self._instantiate_residue(residue, body)
                if not self._valid(inlined):
                    _rule_event("int-eq", "failed", reason="residue-invalid")
                    continue
            fitted = self.fit_to_grammar(body)
            if fitted is not None:
                self.stats.deduction_solved = True
                _rule_event("eq", "fired", delta=fitted.size)
                return DeductionResult(solution=fitted)
        return None

    def _instantiate_residue(self, residue: Term, body: Term) -> Term:
        from repro.lang.traversal import substitute_apps

        return substitute_apps(
            residue, self.problem.fun_name, self.problem.synth_fun.params, body
        )

    def _body_from_invocation(self, invocation: Term, bound: Term) -> Optional[Term]:
        """Turn ``f(args) = bound`` into a body over the formal parameters.

        Requires the argument vector to be distinct variables not occurring
        in ``bound`` except as intended; the general case inverts the
        renaming ``params -> args``.
        """
        args = invocation.args
        params = self.problem.synth_fun.params
        if len(args) != len(params):
            return None
        if len({a for a in args}) != len(args):
            return None
        if not all(a.kind is Kind.VAR for a in args):
            return None
        renaming = {arg: param for arg, param in zip(args, params)}
        body = substitute(bound, renaming)
        # Every free variable of the body must now be a parameter.
        if not free_vars(body) <= set(params):
            return None
        return simplify(body)

    def _rebuild_spec(self, clauses: List[List[Literal]]) -> Term:
        return simplify(
            and_(
                *(
                    or_(*(_literal_term(lit) for lit in clause))
                    for clause in clauses
                )
            )
        )

    # -- Bool-valued functions (BoolPos / BoolNeg) ------------------------------------------

    def _deduct_bool(self, spec: Term) -> DeductionResult:
        """Predicate synthesis via envelope extraction.

        Clauses of the form ``(not f(y)) or Phi`` give upper bounds (f must
        imply Phi — rule BoolNeg); clauses ``f(y) or Phi`` give lower bounds
        (BoolPos).  When every clause mentions f exactly once with the same
        argument vector, the conjunction of upper bounds is the weakest
        candidate; it solves the problem iff it covers every lower bound.
        """
        fun_name = self.problem.fun_name
        params = self.problem.synth_fun.params
        nnf = _to_nnf(spec, True)
        cnf = _to_cnf(simplify(nnf))
        if cnf is None:
            return DeductionResult()
        uppers: List[Term] = []
        lowers: List[Term] = []
        canonical_invocation = self.problem.synth_fun.apply_to_params()
        for clause in cnf:
            literals = _clause_literals(clause)
            f_literals = [lit for lit in literals if contains_app(lit, fun_name)]
            rest = [lit for lit in literals if not contains_app(lit, fun_name)]
            if len(f_literals) != 1:
                return DeductionResult()
            f_literal = f_literals[0]
            if f_literal.kind is Kind.APP and f_literal is not canonical_invocation:
                if f_literal.args != tuple(params):
                    return DeductionResult()
            if f_literal.kind is Kind.NOT:
                inner = f_literal.args[0]
                if inner.kind is not Kind.APP or inner.args != tuple(params):
                    return DeductionResult()
                uppers.append(or_(*rest) if rest else _false())
            elif f_literal.kind is Kind.APP:
                if f_literal.args != tuple(params):
                    return DeductionResult()
                lowers.append(not_(or_(*rest)) if rest else _true())
            else:
                return DeductionResult()
        candidate = simplify(and_(*uppers)) if uppers else _true()
        for lower in lowers:
            if not self._valid(or_(not_(lower), candidate)):
                _rule_event("bool-envelope", "failed", reason="lower-uncovered")
                return DeductionResult()
        fitted = self.fit_to_grammar(candidate)
        if fitted is None:
            return DeductionResult()
        self.stats.deduction_solved = True
        _rule_event("bool-envelope", "fired", delta=fitted.size)
        return DeductionResult(solution=fitted)

    # -- Match rule ------------------------------------------------------------------------

    def fit_to_grammar(self, body: Term) -> Optional[Term]:
        """Return a grammar-conforming equivalent of ``body`` or None (Match)."""
        grammar = self.problem.synth_fun.grammar
        if grammar.generates(body):
            return body
        rewritten = match_rewrite(body, grammar)
        if rewritten is not None and grammar.generates(rewritten):
            _rule_event("match", "fired", delta=rewritten.size - body.size)
            return rewritten
        _rule_event("match", "failed")
        return None


def _true() -> Term:
    from repro.lang.builders import bool_const

    return bool_const(True)


def _false() -> Term:
    from repro.lang.builders import bool_const

    return bool_const(False)


def match_rewrite(body: Term, grammar) -> Optional[Term]:
    """The Match rule: fold subexpressions into interpreted-function calls.

    Repeatedly matches the definition bodies of the grammar's interpreted
    functions against subexpressions of ``body`` (innermost first) and
    replaces matches with applications, until the result is a grammar member
    or no further folding applies.
    """
    from repro.lang.builders import apply_fn

    functions = list(grammar.interpreted.values())
    if not functions:
        return None
    current = body
    for _ in range(body.size):
        if grammar.generates(current):
            return current
        folded = None
        for func in functions:
            folded = _fold_once(current, func)
            if folded is not None:
                break
        if folded is None:
            return current
        current = folded
    return current


def _fold_once(term: Term, func) -> Optional[Term]:
    """Replace one innermost instance of ``func``'s body pattern, if any."""
    replaced = {"done": False}

    def rw(t: Term) -> Term:
        if replaced["done"]:
            return t
        binding = _match_pattern(func.body, t, dict.fromkeys(func.params))
        if binding is not None:
            replaced["done"] = True
            from repro.lang.builders import apply_fn

            return apply_fn(
                func.name,
                [binding[p] for p in func.params],
                func.return_sort,
            )
        return t

    result = rewrite_bottom_up(term, rw)
    return result if replaced["done"] else None


def _match_pattern(pattern: Term, target: Term, binding: Dict) -> Optional[Dict]:
    """Syntactic matching of ``pattern`` (params are wildcards) to ``target``.

    Binary +/and/or patterns additionally match n-ary flattened targets by
    trying every prefix/suffix split (so ``x1 + x1`` matches ``x+x+x+x`` as
    ``(x+x) + (x+x)``, the paper's Match example).
    """
    binding = dict(binding)

    def go(p: Term, t: Term) -> bool:
        if p in binding:
            bound = binding[p]
            if bound is None:
                binding[p] = t
                return True
            return bound is t
        if p.kind is Kind.VAR:
            return p is t
        if p.kind is not t.kind or p.payload != t.payload:
            return False
        if len(p.args) != len(t.args):
            if (
                p.kind in (Kind.ADD, Kind.AND, Kind.OR)
                and len(p.args) == 2
                and len(t.args) > 2
            ):
                saved = dict(binding)
                for split in range(1, len(t.args)):
                    left = (
                        t.args[0]
                        if split == 1
                        else Term.make(t.kind, t.args[:split], t.payload, t.sort)
                    )
                    right = (
                        t.args[split]
                        if split == len(t.args) - 1
                        else Term.make(t.kind, t.args[split:], t.payload, t.sort)
                    )
                    if go(p.args[0], left) and go(p.args[1], right):
                        return True
                    binding.clear()
                    binding.update(saved)
                return False
            return False
        saved = dict(binding)
        if all(go(pa, ta) for pa, ta in zip(p.args, t.args)):
            return True
        binding.clear()
        binding.update(saved)
        return False

    if go(pattern, target):
        return binding
    return None
