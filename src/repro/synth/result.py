"""Result and statistics types for synthesis runs."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional

from repro.sygus.problem import Solution


@dataclass
class SynthesisStats:
    """Counters describing how a solution was (or was not) found."""

    deduction_steps: int = 0
    deduction_solved: bool = False
    cegis_iterations: int = 0
    heights_tried: int = 0
    max_height_reached: int = 0
    subproblems_created: int = 0
    subproblems_solved: int = 0
    smt_checks: int = 0
    smt_rounds: int = 0
    theory_lemmas: int = 0
    assumption_core_skips: int = 0
    learnt_clauses_deleted: int = 0

    def merge(self, other: "SynthesisStats") -> None:
        self.deduction_steps += other.deduction_steps
        self.deduction_solved = self.deduction_solved or other.deduction_solved
        self.cegis_iterations += other.cegis_iterations
        self.heights_tried += other.heights_tried
        self.max_height_reached = max(self.max_height_reached, other.max_height_reached)
        self.subproblems_created += other.subproblems_created
        self.subproblems_solved += other.subproblems_solved
        self.smt_checks += other.smt_checks
        self.smt_rounds += other.smt_rounds
        self.theory_lemmas += other.theory_lemmas
        self.assumption_core_skips += other.assumption_core_skips
        self.learnt_clauses_deleted += other.learnt_clauses_deleted

    @staticmethod
    def from_json(data: Dict) -> "SynthesisStats":
        """Rebuild from a plain dict (e.g. a JobResult's ``stats`` payload).

        Unknown keys are ignored and missing keys keep their defaults, so
        records written by other versions still load.
        """
        stats = SynthesisStats()
        for spec in fields(SynthesisStats):
            if spec.name in data:
                setattr(stats, spec.name, data[spec.name])
        return stats


@dataclass
class SynthesisOutcome:
    """Outcome of a synthesis attempt."""

    solution: Optional[Solution]
    stats: SynthesisStats = field(default_factory=SynthesisStats)
    timed_out: bool = False

    @property
    def solved(self) -> bool:
        return self.solution is not None
