"""Loop summarisation for invariant synthesis (Section 6, Appendix A).

For *acyclic translational* loops — every variable is updated by a constant
offset, optionally guarded by one shared linear condition — the k-step
transition relation has a closed-form summary::

    fast-trans(x, y)  <=>  exists k >= 0 . trans^k(x) = y

Because the guard value changes monotonically along a translation, the
"guard holds at every step" condition collapses to at most two endpoint
checks, and ``k`` can be eliminated whenever some variable advances by +-1
per iteration.  When additionally the precondition pins every variable to a
constant, the *reachable-state set* ``inv(y) = fast-trans(x0, y)`` is itself
a loop invariant candidate; it is verified against the full specification
before being returned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang.ast import Kind, Term
from repro.lang.builders import add, and_, eq, ge, int_const, mul, or_, sub
from repro.lang.simplify import simplify
from repro.lang.sorts import INT
from repro.lang.traversal import free_vars, substitute
from repro.smt.linear import LinearityError, LinExpr, term_to_linexpr
from repro.sygus.problem import InvariantProblem, SygusProblem


class _NotTranslational(Exception):
    """The transition does not match the acyclic translational pattern."""


def _conjuncts(term: Term) -> List[Term]:
    if term.kind is Kind.AND:
        return list(term.args)
    return [term]


def _parse_updates(invariant: InvariantProblem) -> Dict[Term, Term]:
    """Extract ``x' = u`` update terms from the transition relation."""
    updates: Dict[Term, Term] = {}
    primed = {invariant.primed(v): v for v in invariant.variables}
    for conjunct in _conjuncts(invariant.trans):
        if conjunct.kind is not Kind.EQ:
            raise _NotTranslational()
        left, right = conjunct.args
        if left in primed:
            updates[primed[left]] = right
        elif right in primed:
            updates[primed[right]] = left
        else:
            raise _NotTranslational()
    if set(updates) != set(invariant.variables):
        raise _NotTranslational()
    for update in updates.values():
        if any(v in primed for v in free_vars(update)):
            raise _NotTranslational()
    return updates


def _constant_offset(update: Term, variable: Term) -> Optional[int]:
    """If ``update = variable + c``, return ``c``."""
    try:
        diff = term_to_linexpr(update) - term_to_linexpr(variable)
    except LinearityError:
        return None
    if diff.is_constant:
        return diff.const
    return None


def _guard_to_linexpr(guard: Term) -> Optional[LinExpr]:
    """Normalise a guard atom to ``expr >= 0`` form."""
    kind = guard.kind
    if kind not in (Kind.GE, Kind.GT, Kind.LE, Kind.LT):
        return None
    left, right = guard.args
    try:
        l, r = term_to_linexpr(left), term_to_linexpr(right)
    except LinearityError:
        return None
    if kind is Kind.GE:
        return l - r
    if kind is Kind.GT:
        return l - r + LinExpr.constant(-1)
    if kind is Kind.LE:
        return r - l
    return r - l + LinExpr.constant(-1)


def _linexpr_to_term(expr: LinExpr, env: Dict[str, Term]) -> Term:
    """Rebuild a linear expression with binary +/- only (grammar-safe)."""
    positives: List[Term] = []
    negatives: List[Term] = []
    for name, coeff in expr.coeffs:
        target = env[name]
        bucket = positives if coeff > 0 else negatives
        bucket.extend([target] * abs(coeff))
    if expr.const > 0 or not positives:
        positives.insert(0, int_const(max(expr.const, 0)))
    result = positives[0]
    for part in positives[1:]:
        result = add(result, part)
    for part in negatives:
        result = sub(result, part)
    if expr.const < 0:
        result = sub(result, int_const(-expr.const))
    return result


class TranslationalSummary:
    """The fast-trans predicate of an acyclic translational loop."""

    def __init__(
        self,
        variables: Tuple[Term, ...],
        offsets: Dict[Term, int],
        guard: Optional[LinExpr],
    ) -> None:
        self.variables = variables
        self.offsets = offsets
        self.guard = guard
        self.pivot = self._choose_pivot()

    def _choose_pivot(self) -> Term:
        for variable in self.variables:
            if abs(self.offsets[variable]) == 1:
                return variable
        raise _NotTranslational()

    def fast_trans(self, source: Dict[Term, Term], target: Dict[Term, Term]) -> Term:
        """The formula ``fast-trans(source, target)``.

        ``source``/``target`` map each loop variable to the term standing for
        its start/end value.
        """
        pivot = self.pivot
        sign = self.offsets[pivot]
        # k = sign * (target_pivot - source_pivot)
        k_term = simplify(
            sub(target[pivot], source[pivot])
            if sign == 1
            else sub(source[pivot], target[pivot])
        )
        same_state = and_(
            *(eq(target[v], source[v]) for v in self.variables)
        )
        steps: List[Term] = [ge(k_term, 1)]
        for variable in self.variables:
            offset = self.offsets[variable]
            if variable is pivot:
                continue
            if offset == 0:
                steps.append(eq(target[variable], source[variable]))
            else:
                scaled = k_term
                for _ in range(abs(offset) - 1):
                    scaled = add(scaled, k_term)
                update = (
                    add(source[variable], scaled)
                    if offset > 0
                    else sub(source[variable], scaled)
                )
                steps.append(eq(target[variable], update))
        if self.guard is not None:
            env_source = {v.payload: source[v] for v in self.variables}
            steps.append(ge(_linexpr_to_term(self.guard, env_source), 0))
            progress = sum(
                coeff * self.offsets[_lookup(self.variables, name)]
                for name, coeff in self.guard.coeffs
            )
            if progress < 0:
                # Guard decreases along the run; the last step (k-1) is the
                # binding one: guard(target - offsets) >= 0.
                env_last = {
                    v.payload: sub(target[v], int_const(self.offsets[v]))
                    if self.offsets[v] != 0
                    else target[v]
                    for v in self.variables
                }
                steps.append(ge(_linexpr_to_term(self.guard, env_last), 0))
        return simplify(or_(same_state, and_(*steps)))


def _lookup(variables: Tuple[Term, ...], name: str) -> Term:
    for variable in variables:
        if variable.payload == name:
            return variable
    raise _NotTranslational()


def summarize(invariant: InvariantProblem) -> Optional[TranslationalSummary]:
    """Try to build a translational summary of the loop; None if not matching."""
    try:
        updates = _parse_updates(invariant)
        offsets: Dict[Term, int] = {}
        guard_expr: Optional[LinExpr] = None
        guarded_seen = False
        for variable, update in updates.items():
            offset = _constant_offset(update, variable)
            if offset is not None:
                offsets[variable] = offset
                continue
            # Guarded update: ite(g, x + c, x).
            if update.kind is not Kind.ITE:
                raise _NotTranslational()
            cond, then, els = update.args
            if els is not variable:
                raise _NotTranslational()
            offset = _constant_offset(then, variable)
            if offset is None:
                raise _NotTranslational()
            lin = _guard_to_linexpr(cond)
            if lin is None:
                raise _NotTranslational()
            if guard_expr is not None and lin != guard_expr:
                raise _NotTranslational()
            guard_expr = lin
            guarded_seen = True
            offsets[variable] = offset
        if guarded_seen:
            # Unguarded non-zero offsets cannot mix with guarded ones.
            for variable, update in updates.items():
                if update.kind is not Kind.ITE and offsets[variable] != 0:
                    raise _NotTranslational()
        if all(offset == 0 for offset in offsets.values()):
            raise _NotTranslational()
        return TranslationalSummary(invariant.variables, offsets, guard_expr)
    except _NotTranslational:
        return None


def _initial_state(invariant: InvariantProblem) -> Optional[Dict[Term, Term]]:
    """If the precondition fixes every variable to a constant, return it."""
    state: Dict[Term, Term] = {}
    for conjunct in _conjuncts(invariant.pre):
        if conjunct.kind is not Kind.EQ:
            return None
        left, right = conjunct.args
        if left.kind is Kind.VAR and right.kind is Kind.CONST:
            state[left] = right
        elif right.kind is Kind.VAR and left.kind is Kind.CONST:
            state[right] = left
        else:
            return None
    if set(state) != set(invariant.variables):
        return None
    return state


def try_loop_summary(problem: SygusProblem, deducer) -> Optional[Term]:
    """Solve an invariant problem by loop summarisation, if applicable.

    Builds ``inv(y) = fast-trans(x0, y)`` for constant initial states and
    verifies it against the full three-part specification (so imprecision in
    the summary can never produce a wrong answer).
    """
    invariant = problem.invariant
    if invariant is None:
        return None
    summary = summarize(invariant)
    if summary is None:
        return None
    initial = _initial_state(invariant)
    if initial is None:
        return None
    params = problem.synth_fun.params
    target = dict(zip(invariant.variables, params))
    body = summary.fast_trans(initial, target)
    fitted = deducer.fit_to_grammar(body)
    if fitted is None:
        return None
    ok, _ = problem.verify(fitted)
    if not ok:
        return None
    deducer.stats.deduction_solved = True
    return fitted
