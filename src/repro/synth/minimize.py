"""Post-hoc solution minimisation.

The paper observes (Table 1 discussion) that DryadSynth's deductive
component "does not control the solution size": merging rules produce
correct but redundant ite towers.  This pass shrinks a verified solution by
attempting size-decreasing, verification-preserving rewrites:

1. collapse ite branches whose condition is decidable relative to nothing
   (handled by ``simplify``);
2. try replacing any subterm with a strictly smaller candidate drawn from
   {0, 1, the parameters, the subterm's own children}; keep a replacement
   iff the whole solution still verifies.

Every accepted rewrite re-verifies against the full specification, so the
result is correct by construction; the budget bounds the number of SMT
calls.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.lang.ast import Kind, Term
from repro.lang.builders import int_const
from repro.lang.simplify import simplify
from repro.lang.sorts import INT
from repro.lang.traversal import subexpressions, substitute
from repro.sygus.problem import SygusProblem


def _candidate_replacements(sub: Term, problem: SygusProblem) -> Iterator[Term]:
    """Strictly smaller terms that could replace ``sub``."""
    if sub.sort is INT:
        if sub.kind is not Kind.CONST:
            yield int_const(0)
        for param in problem.synth_fun.params:
            if param.sort is INT and param is not sub and param.size < sub.size:
                yield param
    if sub.kind is Kind.ITE:
        yield sub.args[1]
        yield sub.args[2]
    elif len(sub.args) == 2 and sub.kind in (Kind.ADD, Kind.SUB):
        for child in sub.args:
            if child.sort is sub.sort:
                yield child


def minimize_solution(
    problem: SygusProblem,
    body: Term,
    max_checks: int = 24,
    deadline: Optional[float] = None,
) -> Term:
    """Shrink ``body`` while it keeps verifying against ``problem``.

    Returns a body that verifies (the input is assumed to verify); when the
    budget runs out the best-so-far is returned.
    """
    from repro.smt.solver import SolverBudgetExceeded

    current = simplify(body)
    checks_left = max_checks
    grammar = problem.synth_fun.grammar
    improved = True
    while improved and checks_left > 0:
        improved = False
        # Largest subterms first: replacing them saves the most.
        subs: List[Term] = sorted(
            (s for s in subexpressions(current) if s is not current),
            key=lambda t: -t.size,
        )
        for sub in subs:
            if checks_left <= 0:
                break
            for replacement in _candidate_replacements(sub, problem):
                if replacement.size >= sub.size:
                    continue
                candidate = simplify(substitute(current, {sub: replacement}))
                if candidate.size >= current.size:
                    continue
                if not grammar.generates(candidate):
                    continue
                checks_left -= 1
                try:
                    ok, _ = problem.verify(candidate, deadline)
                except SolverBudgetExceeded:
                    return current
                if ok:
                    current = candidate
                    improved = True
                    break
            if improved:
                break
    return current
