"""Table 1: number of smallest solutions and median solution size.

Computed over commonly solved benchmarks with the competition's pseudo-log
size buckets.  Paper's shape: EUSolver (purely enumerative, smallest-first)
has the most smallest solutions and small medians; CVC4/CEGQI produces by
far the largest solutions (ite cascades); DryadSynth sits in between.
"""

from repro.bench import report

_COMPETITORS = {"dryadsynth", "cegqi", "eusolver", "loopinvgen"}


def test_table1_solution_sizes(benchmark, suite_results):
    competition = [r for r in suite_results if r.solver in _COMPETITORS]
    table = benchmark(report.table1_solution_sizes, competition)
    print()
    for track, per_solver in table.items():
        rows = [
            [solver, data["smallest"], data["median_size"], data["common"]]
            for solver, data in sorted(per_solver.items())
        ]
        print(
            report.render_table(
                ["solver", "smallest", "median size", "common benchmarks"],
                rows,
                f"Table 1 ({track})",
            )
        )
        print()
    # Shape: wherever CLIA-track sizes are comparable, CEGQI's median
    # solution is the largest (the paper's ite-cascade signature).
    clia = table.get("CLIA", {})
    if "cegqi" in clia and "eusolver" in clia and clia["cegqi"]["common"] >= 2:
        assert clia["cegqi"]["median_size"] >= clia["eusolver"]["median_size"]
