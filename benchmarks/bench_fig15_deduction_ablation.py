"""Figure 15: plain deduction versus the full cooperative framework.

Per track: how many benchmarks pure divide-and-conquer deduction solves, and
how many more the height-based enumeration adds.  Paper's numbers: only
32.6% of cooperatively solved benchmarks fall to deduction alone; the
majority needs the enumerative engine.
"""

from repro.bench import report


def test_fig15_deduction_vs_cooperative(benchmark, suite_results):
    table = benchmark(report.fig15_deduction_ablation, suite_results)
    print()
    rows = [
        [track, counts["deduct"], counts["coop_extra"]]
        for track, counts in table.items()
    ]
    print(
        report.render_table(
            ["track", "solved by deduction", "extra via enumeration"],
            rows,
            "Figure 15: deduction-only vs cooperative",
        )
    )
    total_deduct = sum(c["deduct"] for c in table.values())
    total_extra = sum(c["coop_extra"] for c in table.values())
    total = total_deduct + total_extra
    print(f"\ndeduction share: {total_deduct}/{total}")
    assert total > 0
    # Shape: deduction alone covers a real fraction but NOT everything —
    # the cooperation is what closes the gap (the paper's 32.6% story).
    assert total_deduct >= 1
    assert total_extra >= 1
