"""Figure 14: cooperative synthesis versus plain height-based enumeration.

The scatter of solve times, cooperative (x) against standalone Algorithm 2
(y).  Paper's shape: the vast majority of points lie above the diagonal
(cooperation wins), with a small tail of trivial problems where plain
enumeration is marginally faster (divide-and-conquer can't help there).
"""

from repro.bench import report


def test_fig14_coop_vs_plain_enum(benchmark, suite_results):
    from repro.bench.plots import scatter_plot

    points = benchmark(report.fig14_coop_vs_enum, suite_results)
    print()
    print(
        scatter_plot(
            points,
            "cooperative",
            "height-enum",
            title="Figure 14: cooperative (x) vs plain height enumeration (y)",
        )
    )
    print()
    print(
        report.render_scatter(
            points,
            "dryadsynth",
            "height-enum",
            "Figure 14 data",
        )
    )
    coop_only = sum(1 for _, c, e in points if c is not None and e is None)
    enum_only = sum(1 for _, c, e in points if c is None and e is not None)
    both = [(c, e) for _, c, e in points if c is not None and e is not None]
    # Compare within the competition's pseudo-log buckets: sub-bucket jitter
    # is noise, not a win.
    coop_wins = sum(
        1
        for c, e in both
        if report.bucket_time(c) <= report.bucket_time(e)
    )
    print(
        f"\ncoop-only={coop_only} enum-only={enum_only} "
        f"both={len(both)} coop-bucket-faster-or-equal={coop_wins}"
    )
    # Shape: cooperation solves a superset (or equal) of what plain
    # enumeration solves, and is bucket-competitive on most shared wins.
    assert coop_only >= enum_only
    if both:
        assert coop_wins >= len(both) // 2
