"""Micro-benchmarks of the individual engines on representative problems.

These time actual solver executions (not aggregate reporting), giving a
stable per-engine performance series for regression tracking:

- the deductive component on the Figure 9 max3 pipeline;
- loop summarisation on Example 2.14;
- fixed-height symbolic synthesis (Algorithm 2) on max2;
- the SMT substrate on a fixed QF_LIA query.
"""

from repro.lang import (
    add,
    and_,
    eq,
    ge,
    implies,
    int_var,
    ite,
    le,
    lt,
    not_,
    or_,
)
from repro.lang.sorts import INT
from repro.sygus.grammar import clia_grammar
from repro.sygus.problem import InvariantProblem, SygusProblem, SynthFun
from repro.synth.config import SynthConfig
from repro.synth.deduction import Deducer
from repro.synth.fixed_height import fixed_height

x, y, z = int_var("x"), int_var("y"), int_var("z")


def _max3_problem():
    fun = SynthFun("f", (x, y, z), INT, clia_grammar((x, y, z)))
    fx = fun.apply((x, y, z))
    spec = and_(
        ge(fx, x),
        ge(fx, y),
        ge(fx, z),
        or_(eq(fx, x), eq(fx, y), eq(fx, z)),
    )
    return SygusProblem(fun, spec, (x, y, z), name="max3")


def test_deduction_max3(benchmark):
    problem = _max3_problem()

    def run():
        result = Deducer(problem).deduct()
        assert result.solution is not None
        return result.solution

    benchmark(run)


def test_loop_summary_example_2_14(benchmark):
    inv = InvariantProblem.from_updates(
        (x,),
        eq(x, 0),
        (ite(lt(x, 100), add(x, 1), x),),
        implies(not_(lt(x, 100)), eq(x, 100)),
    )
    problem = inv.to_sygus()

    def run():
        result = Deducer(problem).deduct()
        assert result.solution is not None
        return result.solution

    benchmark(run)


def test_fixed_height_max2(benchmark):
    fun = SynthFun("f", (x, y), INT, clia_grammar((x, y)))
    fx = fun.apply((x, y))
    spec = and_(ge(fx, x), ge(fx, y), or_(eq(fx, x), eq(fx, y)))
    problem = SygusProblem(fun, spec, (x, y), name="max2")
    config = SynthConfig()

    def run():
        body = fixed_height(problem, 2, config)
        assert body is not None
        return body

    benchmark(run)


def test_smt_substrate_query(benchmark):
    from repro.smt.solver import SmtSolver, Status

    maximum = ite(ge(x, y), x, y)
    formula = and_(
        eq(maximum, z),
        le(x, 100),
        ge(x, -100),
        le(y, 100),
        implies(ge(z, 50), ge(add(x, y), 0)),
    )

    def run():
        result = SmtSolver().check(formula)
        assert result.status is Status.SAT
        return result

    benchmark(run)
