"""Figure 10: number of solved benchmarks, broken down by track.

Paper's shape: DryadSynth solves the most benchmarks in every track; CVC4
(cegqi) and EUSolver trail; LoopInvGen participates in INV only.
"""

from repro.bench import report


def test_fig10_solved_by_track(benchmark, suite_results):
    table = benchmark(report.fig10_solved_by_track, suite_results)
    print()
    print(report.render_solved_by_track(table, "Figure 10: solved benchmarks by track"))

    def total(solver):
        return sum(table.get(solver, {}).values())

    # Headline claim: DryadSynth solves at least as many as every baseline,
    # overall and per track.
    for baseline in ("cegqi", "eusolver", "loopinvgen", "height-enum"):
        assert total("dryadsynth") >= total(baseline), (
            f"dryadsynth must dominate {baseline} overall"
        )
    for track in ("INV", "CLIA", "General"):
        for baseline in ("cegqi", "eusolver", "loopinvgen"):
            assert table["dryadsynth"][track] >= table.get(baseline, {}).get(
                track, 0
            ), f"dryadsynth must lead {baseline} on the {track} track"
    # LoopInvGen is INV-only.
    assert table.get("loopinvgen", {}).get("CLIA", 0) == 0
    assert table.get("loopinvgen", {}).get("General", 0) == 0


def test_fig10_unique_solves(suite_results):
    """The paper reports 58 benchmarks solved only by DryadSynth."""
    competitors = {"dryadsynth", "cegqi", "eusolver", "loopinvgen"}
    competition = [r for r in suite_results if r.solver in competitors]
    uniques = report.unique_solves(competition)
    print()
    for solver, benches in sorted(uniques.items()):
        print(f"uniquely solved by {solver}: {len(benches)} -> {benches}")
    assert len(uniques.get("dryadsynth", [])) >= 1, (
        "DryadSynth should solve some benchmarks no baseline solves"
    )
