"""Figure 11: number of benchmarks solved the fastest, by track.

Ties are shared within the competition's pseudo-logarithmic time buckets.
Paper's shape: DryadSynth is fastest on the most benchmarks in every track.
"""

from repro.bench import report

_COMPETITORS = {"dryadsynth", "cegqi", "eusolver", "loopinvgen"}


def test_fig11_fastest_by_track(benchmark, suite_results):
    competition = [r for r in suite_results if r.solver in _COMPETITORS]
    table = benchmark(report.fig11_fastest_by_track, competition)
    print()
    print(
        report.render_solved_by_track(
            table, "Figure 11: fastest-solved benchmarks by track"
        )
    )

    def total(solver):
        return sum(table.get(solver, {}).values())

    for baseline in ("eusolver", "loopinvgen"):
        assert total("dryadsynth") >= total(baseline)
    # Deduction makes DryadSynth instant on many problems, so it must be
    # fastest (or tied-fastest) on a healthy share of what it solves.
    solved = sum(
        1
        for r in competition
        if r.solver == "dryadsynth" and r.solved
    )
    assert total("dryadsynth") >= max(1, solved // 2)
