"""Shared fixtures for the figure-regeneration benchmark harness.

The paper derives Figures 10-16 and Table 1 from one benchmark campaign;
likewise, all harness files here share a single cached portfolio run.  The
knobs:

- ``REPRO_BENCH_TIMEOUT`` — per-(benchmark, solver) budget in seconds
  (default 10; the paper used 1800 on StarExec).
- ``REPRO_BENCH_QUICK`` — set to 1 to restrict the suite to the benchmarks
  with difficulty <= 2 (a fast smoke campaign).
- ``REPRO_BENCH_CACHE`` — path of the results cache (default:
  ``bench_results.json`` at the repository root).

Results are cached on disk, so the first ``pytest benchmarks/`` pays for the
campaign and later runs only regenerate the figures.
"""

import os

import pytest

from repro.bench.runner import DEFAULT_TIMEOUT, ResultsCache, run_suite
from repro.bench.suite import full_suite


def _selected_benchmarks():
    suite = full_suite()
    if os.environ.get("REPRO_BENCH_QUICK"):
        suite = [b for b in suite if b.difficulty <= 2]
    return suite


@pytest.fixture(scope="session")
def suite_results():
    """All portfolio runs (one per benchmark x solver), cached on disk."""
    return run_suite(
        _selected_benchmarks(),
        timeout=DEFAULT_TIMEOUT,
        cache=ResultsCache(),
    )


@pytest.fixture(scope="session")
def track_counts():
    from collections import Counter

    return Counter(b.track for b in _selected_benchmarks())
