"""Figure 16: vanilla DryadSynth versus EUSolver-backed DryadSynth.

Same cooperative framework, with the fixed-height symbolic engine replaced
by the enumerative baseline (the paper could not height-bound EUSolver, so
each call searches a growing size class).  Benchmarks solved by pure
deduction are excluded, exactly as in the paper.  Paper's shape: the native
height-based engine consistently beats the EUSolver-backed hybrid and
solves more benchmarks.
"""

from repro.bench import report


def test_fig16_vanilla_vs_euback(benchmark, suite_results):
    from repro.bench.plots import scatter_plot

    points = benchmark(report.fig16_euback_comparison, suite_results)
    print()
    print(
        scatter_plot(
            points,
            "vanilla",
            "euback",
            title="Figure 16: vanilla (x) vs EUSolver-backed (y)",
        )
    )
    print()
    print(
        report.render_scatter(
            points,
            "dryadsynth",
            "dryadsynth-euback",
            "Figure 16: vanilla vs EUSolver-backed DryadSynth "
            "(deduction-solved benchmarks excluded)",
        )
    )
    vanilla_solved = sum(1 for _, v, e in points if v is not None)
    euback_solved = sum(1 for _, v, e in points if e is not None)
    print(f"\nvanilla solved={vanilla_solved} euback solved={euback_solved}")
    # Shape: the native symbolic engine solves at least as many of the
    # non-deductive benchmarks as the EUSolver-backed variant.
    assert vanilla_solved >= euback_solved
