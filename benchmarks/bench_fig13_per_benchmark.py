"""Figure 13: per-benchmark solving time, sorted ascending, per track.

Paper's shape: DryadSynth has a small constant overhead on the easiest
problems (its curve starts a touch higher) but climbs far more gently
toward the hard end than the baselines — better scalability.
"""

from repro.bench import report

_COMPETITORS = ("dryadsynth", "cegqi", "eusolver", "loopinvgen")


def test_fig13_times_ascending(benchmark, suite_results):
    from repro.bench.plots import cactus_plot

    series_all = benchmark(report.fig13_times_ascending, suite_results)
    print()
    print(
        cactus_plot(
            {s: series_all.get(s, []) for s in _COMPETITORS},
            title="Figure 13 (all tracks): per-benchmark time, ascending",
        )
    )
    print()
    for track in ("INV", "CLIA", "General"):
        series = report.fig13_times_ascending(suite_results, track)
        print(f"-- {track} --")
        for solver in _COMPETITORS:
            times = series.get(solver, [])
            preview = ", ".join(f"{t:.2f}" for t in times[:10])
            more = "..." if len(times) > 10 else ""
            print(f"  {solver:12s} ({len(times):3d} solved) [{preview}{more}]")
    # Scalability shape: the *median* solved benchmark is as cheap or
    # cheaper for DryadSynth than for the general-purpose baselines it
    # dominates (its deduction front-end discharges the easy mass).
    import statistics

    all_series = report.fig13_times_ascending(suite_results)
    dryad = all_series.get("dryadsynth", [])
    assert dryad, "dryadsynth must solve something"
    for baseline in ("eusolver",):
        base = all_series.get(baseline, [])
        if base:
            assert statistics.median(dryad) <= statistics.median(base) * 5
