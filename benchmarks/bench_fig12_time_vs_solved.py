"""Figure 12: total solving time versus number of solved benchmarks.

One cumulative curve per solver and track: after sorting a solver's solve
times, point ``(n, t)`` says its ``n`` fastest solves took ``t`` seconds in
total.  Paper's shape: DryadSynth's curve reaches further right (more
solved) while staying low (less total time) than the baselines', on the
CLIA and General tracks especially.
"""

from repro.bench import report

_COMPETITORS = ("dryadsynth", "cegqi", "eusolver", "loopinvgen")


def _final_point(curves, solver):
    points = curves.get(solver) or []
    return points[-1] if points else (0, 0.0)


def test_fig12_curves_per_track(benchmark, suite_results):
    curves_all = benchmark(report.fig12_time_vs_solved, suite_results)
    print()
    for track in (None, "INV", "CLIA", "General"):
        curves = (
            curves_all
            if track is None
            else report.fig12_time_vs_solved(suite_results, track)
        )
        label = track or "All tracks"
        print(f"-- {label} --")
        for solver in _COMPETITORS:
            solved, total = _final_point(curves, solver)
            print(f"  {solver:12s} solved={solved:3d} total={total:8.2f}s")
    # Shape: on every track DryadSynth ends at least as far right as each
    # baseline (it solves a superset-sized count).
    for track in ("INV", "CLIA", "General"):
        curves = report.fig12_time_vs_solved(suite_results, track)
        d_solved, _ = _final_point(curves, "dryadsynth")
        for baseline in ("cegqi", "eusolver", "loopinvgen"):
            b_solved, _ = _final_point(curves, baseline)
            assert d_solved >= b_solved, (track, baseline)
